package obs

import (
	"fmt"

	"harl/internal/sim"
	"harl/internal/stats"
)

// The sketch layer is the continuous per-server observability the
// heterogeneity story needs: mergeable per-server × per-op quantile
// digests of disk wait/service/total latency, queue-depth and busy-time
// series windowed on the virtual clock, per-node network transfer
// digests, and a region × server byte/latency matrix (the skew heatmap).
// It is fed from the pfs disk-completion hook, the client sub-request
// path and the netsim transfer completion, and consumed by the
// internal/diagnose anomaly detector through the OnWindow callback.
//
// The layer inherits the package's passive-observer contract: it never
// schedules events or draws engine randomness — windows roll lazily when
// an observation arrives past the boundary, exactly like the PR 5
// monitor — and a nil *SketchSet is a valid disabled instance, so feed
// points call unconditionally.

// DefaultSketchWindow is the default sliding-window length, matching the
// workload monitor's.
const DefaultSketchWindow = 50 * sim.Millisecond

// SketchConfig tunes the sketch layer.
type SketchConfig struct {
	// Window is the time-series window on the virtual clock; 0 means
	// DefaultSketchWindow.
	Window sim.Duration
	// Alpha is the digests' relative accuracy; 0 means
	// stats.DefaultSketchAlpha.
	Alpha float64
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Window == 0 {
		c.Window = DefaultSketchWindow
	}
	if c.Alpha == 0 {
		c.Alpha = stats.DefaultSketchAlpha
	}
	return c
}

// ServerWindow is one server's closed-window summary, in seconds of
// virtual time. Latency quantiles cover total disk latency (queue wait
// plus service); empty windows carry zero quantiles and Ops == 0.
type ServerWindow struct {
	Server string
	Tier   string
	End    sim.Time

	Ops      int64
	ReadOps  int64
	WriteOps int64
	Bytes    int64

	P50, P99           float64 // total latency (wait + service)
	WaitP99            float64
	ServiceP50         float64
	ServiceP99         float64
	Busy               float64 // summed service seconds completed in the window
	Util               float64 // Busy over the window length
	MaxQueue           int     // deepest observed disk queue
}

// serverSketch is one server's accumulator: cumulative per-op digests
// plus the open window.
type serverSketch struct {
	name string
	tier string

	// Cumulative digests indexed by op (0 read, 1 write).
	lat     [2]*stats.QuantileSketch
	wait    [2]*stats.QuantileSketch
	service [2]*stats.QuantileSketch
	ops     [2]int64
	bytes   [2]int64

	// Open-window accumulators.
	wLat      *stats.QuantileSketch
	wWait     *stats.QuantileSketch
	wService  *stats.QuantileSketch
	wReadOps  int64
	wWriteOps int64
	wBytes    int64
	wBusy     float64
	wMaxQueue int
}

func (s *serverSketch) resetWindow() {
	s.wLat.Reset()
	s.wWait.Reset()
	s.wService.Reset()
	s.wReadOps, s.wWriteOps, s.wBytes = 0, 0, 0
	s.wBusy = 0
	s.wMaxQueue = 0
}

// heatCell is one (server, region) cell of the skew heatmap.
type heatCell struct {
	Bytes      int64
	Ops        int64
	LatSeconds float64
	winBytes   int64
}

// netSketch is one node's cumulative transfer digest.
type netSketch struct {
	name  string
	lat   *stats.QuantileSketch
	xfers int64
	bytes int64
}

// SketchSet is the streaming sketch layer for one file system. Construct
// with NewSketchSet; nil is a disabled set.
type SketchSet struct {
	engine *sim.Engine
	cfg    SketchConfig
	tracer *Tracer

	windowStart sim.Time
	windows     int

	servers []*serverSketch
	heat    [][]heatCell // [server][region]
	regions int

	nets   []*netSketch
	netIdx map[string]int

	onWindow func(end sim.Time, window sim.Duration, servers []ServerWindow)
}

// NewSketchSet builds an enabled, empty sketch set on the engine's
// virtual clock. Servers are registered by the file system at attach
// time (AddServer).
func NewSketchSet(e *sim.Engine, cfg SketchConfig) *SketchSet {
	if e == nil {
		panic("obs: sketch set needs an engine")
	}
	if cfg.Window < 0 {
		panic(fmt.Sprintf("obs: negative sketch window %v", cfg.Window))
	}
	cfg = cfg.withDefaults()
	return &SketchSet{
		engine:      e,
		cfg:         cfg,
		windowStart: e.Now(),
		netIdx:      make(map[string]int),
	}
}

// Enabled reports whether the set records anything.
func (ss *SketchSet) Enabled() bool { return ss != nil }

// Window returns the configured window length (0 when disabled).
func (ss *SketchSet) Window() sim.Duration {
	if ss == nil {
		return 0
	}
	return ss.cfg.Window
}

// AttachTracer routes window-close gauges onto tr as Perfetto counter
// samples: per-server total-latency p99 on the "sketch" track and the
// per-window heatmap bytes on "heatmap/<server>" tracks. Nil detaches.
func (ss *SketchSet) AttachTracer(tr *Tracer) {
	if ss == nil {
		return
	}
	ss.tracer = tr
}

// OnWindow installs the window-close callback — the diagnose detector's
// feed. The callback must itself be passive; it receives every server's
// summary (including empty ones, so peer populations stay aligned) at
// each boundary.
func (ss *SketchSet) OnWindow(fn func(end sim.Time, window sim.Duration, servers []ServerWindow)) {
	if ss == nil {
		return
	}
	ss.onWindow = fn
}

// AddServer registers a server and returns its dense sketch index. Order
// of registration fixes reporting order; pfs registers servers in index
// order at attach time.
func (ss *SketchSet) AddServer(name, tier string) int {
	if ss == nil {
		return -1
	}
	alpha := ss.cfg.Alpha
	s := &serverSketch{
		name:     name,
		tier:     tier,
		wLat:     stats.NewQuantileSketch(alpha),
		wWait:    stats.NewQuantileSketch(alpha),
		wService: stats.NewQuantileSketch(alpha),
	}
	for op := 0; op < 2; op++ {
		s.lat[op] = stats.NewQuantileSketch(alpha)
		s.wait[op] = stats.NewQuantileSketch(alpha)
		s.service[op] = stats.NewQuantileSketch(alpha)
	}
	ss.servers = append(ss.servers, s)
	ss.heat = append(ss.heat, nil)
	return len(ss.servers) - 1
}

// NumServers returns how many servers are registered.
func (ss *SketchSet) NumServers() int {
	if ss == nil {
		return 0
	}
	return len(ss.servers)
}

// ServerInfo names a registered server.
type ServerInfo struct {
	Name string
	Tier string
}

// ServerInfos returns the registered servers in index order.
func (ss *SketchSet) ServerInfos() []ServerInfo {
	if ss == nil {
		return nil
	}
	out := make([]ServerInfo, len(ss.servers))
	for i, s := range ss.servers {
		out[i] = ServerInfo{Name: s.name, Tier: s.tier}
	}
	return out
}

// ObserveDisk feeds one completed disk pass for server id: queue wait,
// service time and payload size. Nil-safe.
func (ss *SketchSet) ObserveDisk(id int, write bool, wait, service sim.Duration, bytes int64) {
	if ss == nil {
		return
	}
	ss.roll(ss.engine.Now())
	s := ss.servers[id]
	op := 0
	if write {
		op = 1
		s.wWriteOps++
	} else {
		s.wReadOps++
	}
	ws, sv := wait.Seconds(), service.Seconds()
	total := ws + sv
	s.lat[op].Add(total)
	s.wait[op].Add(ws)
	s.service[op].Add(sv)
	s.ops[op]++
	s.bytes[op] += bytes
	s.wLat.Add(total)
	s.wWait.Add(ws)
	s.wService.Add(sv)
	s.wBytes += bytes
	s.wBusy += sv
}

// ObserveQueue samples server id's in-flight disk queue depth. Nil-safe.
func (ss *SketchSet) ObserveQueue(id, depth int) {
	if ss == nil {
		return
	}
	ss.roll(ss.engine.Now())
	if s := ss.servers[id]; depth > s.wMaxQueue {
		s.wMaxQueue = depth
	}
}

// ObserveRegion accounts one resolved sub-request to the skew heatmap:
// region × server bytes, request count and client-observed latency.
// Nil-safe; region < 0 (a handle without region attribution) is ignored.
func (ss *SketchSet) ObserveRegion(region, id int, bytes int64, lat sim.Duration) {
	if ss == nil || region < 0 {
		return
	}
	ss.roll(ss.engine.Now())
	if region >= ss.regions {
		ss.regions = region + 1
	}
	row := ss.heat[id]
	for len(row) <= region {
		row = append(row, heatCell{})
	}
	row[region].Bytes += bytes
	row[region].Ops++
	row[region].LatSeconds += lat.Seconds()
	row[region].winBytes += bytes
	ss.heat[id] = row
}

// ObserveNet feeds one completed network transfer landing at node:
// submission-to-last-byte latency and size. Nil-safe.
func (ss *SketchSet) ObserveNet(node string, lat sim.Duration, bytes int64) {
	if ss == nil {
		return
	}
	ss.roll(ss.engine.Now())
	idx, ok := ss.netIdx[node]
	if !ok {
		idx = len(ss.nets)
		ss.netIdx[node] = idx
		ss.nets = append(ss.nets, &netSketch{name: node, lat: stats.NewQuantileSketch(ss.cfg.Alpha)})
	}
	n := ss.nets[idx]
	n.lat.Add(lat.Seconds())
	n.xfers++
	n.bytes += bytes
}

// roll closes every window boundary passed since the last observation.
// Lazy, like the monitor — no scheduled events.
func (ss *SketchSet) roll(now sim.Time) {
	for now.Sub(ss.windowStart) >= ss.cfg.Window {
		end := ss.windowStart.Add(ss.cfg.Window)
		ss.closeWindow(end)
		ss.windowStart = end
	}
}

// closeWindow summarizes every server's open window at the boundary,
// hands the aligned population to the OnWindow sink, emits tracer
// gauges, and resets the accumulators.
func (ss *SketchSet) closeWindow(end sim.Time) {
	ss.windows++
	wsecs := ss.cfg.Window.Seconds()
	var wins []ServerWindow
	if ss.onWindow != nil {
		wins = make([]ServerWindow, len(ss.servers))
	}
	for i, s := range ss.servers {
		var w ServerWindow
		w.Server, w.Tier, w.End = s.name, s.tier, end
		w.ReadOps, w.WriteOps = s.wReadOps, s.wWriteOps
		w.Ops = s.wReadOps + s.wWriteOps
		w.Bytes = s.wBytes
		w.Busy = s.wBusy
		w.MaxQueue = s.wMaxQueue
		if wsecs > 0 {
			w.Util = s.wBusy / wsecs
		}
		if w.Ops > 0 {
			w.P50, _ = s.wLat.Quantile(0.5)
			w.P99, _ = s.wLat.Quantile(0.99)
			w.WaitP99, _ = s.wWait.Quantile(0.99)
			w.ServiceP50, _ = s.wService.Quantile(0.5)
			w.ServiceP99, _ = s.wService.Quantile(0.99)
		}
		if tr := ss.tracer; tr != nil && w.Ops > 0 {
			tr.Counter("sketch", "p99ms."+s.name, end, w.P99*1e3)
			tr.Counter("sketch", "util."+s.name, end, w.Util)
		}
		if wins != nil {
			wins[i] = w
		}
		s.resetWindow()
	}
	if tr := ss.tracer; tr != nil {
		for i, s := range ss.servers {
			for r := range ss.heat[i] {
				if wb := ss.heat[i][r].winBytes; wb > 0 {
					tr.Counter("heatmap/"+s.name, fmt.Sprintf("region%d.bytes", r), end, float64(wb))
				}
			}
		}
	}
	for i := range ss.heat {
		for r := range ss.heat[i] {
			ss.heat[i][r].winBytes = 0
		}
	}
	if ss.onWindow != nil {
		ss.onWindow(end, ss.cfg.Window, wins)
	}
}

// Flush closes every window boundary up to the engine's current time —
// call at end of run so trailing windows reach the sink.
func (ss *SketchSet) Flush() {
	if ss == nil {
		return
	}
	ss.roll(ss.engine.Now())
}

// Windows returns how many windows have closed.
func (ss *SketchSet) Windows() int {
	if ss == nil {
		return 0
	}
	return ss.windows
}

// ServerDigest returns server id's cumulative total-latency digest for
// an op (false read, true write). The returned sketch is live — callers
// must not mutate it; merge into a fresh sketch instead.
func (ss *SketchSet) ServerDigest(id int, write bool) *stats.QuantileSketch {
	if ss == nil {
		return nil
	}
	op := 0
	if write {
		op = 1
	}
	return ss.servers[id].lat[op]
}

// ServerOps returns server id's cumulative (reads, writes, bytes).
func (ss *SketchSet) ServerOps(id int) (reads, writes, bytes int64) {
	if ss == nil {
		return 0, 0, 0
	}
	s := ss.servers[id]
	return s.ops[0], s.ops[1], s.bytes[0] + s.bytes[1]
}

// TierDigest merges every same-tier server's cumulative digest for an op
// into a fresh sketch — the per-tier view the digests' mergeability
// exists for.
func (ss *SketchSet) TierDigest(tier string, write bool) *stats.QuantileSketch {
	if ss == nil {
		return nil
	}
	op := 0
	if write {
		op = 1
	}
	out := stats.NewQuantileSketch(ss.cfg.Alpha)
	for _, s := range ss.servers {
		if s.tier == tier {
			out.Merge(s.lat[op])
		}
	}
	return out
}

// NetStat is one node's cumulative transfer summary.
type NetStat struct {
	Node  string
	Xfers int64
	Bytes int64
	P50   float64
	P99   float64
}

// NetStats returns per-node transfer digests in first-seen order —
// deterministic, since transfers replay identically per seed.
func (ss *SketchSet) NetStats() []NetStat {
	if ss == nil {
		return nil
	}
	out := make([]NetStat, len(ss.nets))
	for i, n := range ss.nets {
		st := NetStat{Node: n.name, Xfers: n.xfers, Bytes: n.bytes}
		st.P50, _ = n.lat.Quantile(0.5)
		st.P99, _ = n.lat.Quantile(0.99)
		out[i] = st
	}
	return out
}

// HeatCell is one (server, region) heatmap cell.
type HeatCell struct {
	Bytes      int64
	Ops        int64
	LatSeconds float64
}

// Heatmap is the region × server byte/latency matrix.
type Heatmap struct {
	Servers []ServerInfo
	Regions int
	// Cells is indexed [server][region]; rows are padded to Regions.
	Cells [][]HeatCell
}

// TotalBytes sums the matrix.
func (h *Heatmap) TotalBytes() int64 {
	var total int64
	for _, row := range h.Cells {
		for _, c := range row {
			total += c.Bytes
		}
	}
	return total
}

// ServerBytes sums one server's row.
func (h *Heatmap) ServerBytes(i int) int64 {
	var total int64
	for _, c := range h.Cells[i] {
		total += c.Bytes
	}
	return total
}

// Heatmap snapshots the region × server matrix (nil when disabled or
// empty).
func (ss *SketchSet) Heatmap() *Heatmap {
	if ss == nil || ss.regions == 0 {
		return nil
	}
	h := &Heatmap{Servers: ss.ServerInfos(), Regions: ss.regions}
	h.Cells = make([][]HeatCell, len(ss.servers))
	for i := range ss.servers {
		row := make([]HeatCell, ss.regions)
		for r, c := range ss.heat[i] {
			row[r] = HeatCell{Bytes: c.Bytes, Ops: c.Ops, LatSeconds: c.LatSeconds}
		}
		h.Cells[i] = row
	}
	return h
}
