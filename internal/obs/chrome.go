package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"harl/internal/sim"
)

// Chrome trace_event export: the JSON object format with "X" (complete)
// and "i" (instant) events, loadable in chrome://tracing and Perfetto.
// Tracks map to thread IDs under one process, named via "M" metadata
// events. Everything is emitted in a deterministic order — tracks sorted
// by name, events in recording order — and timestamps are derived purely
// from virtual time, so the same seed always yields byte-identical JSON.

// WriteChrome writes the recorded trace as trace_event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return t.WriteChromeWith(w, nil)
}

// WriteChromeWith is WriteChrome with extra synthetic spans appended to
// the export — e.g. a critical-path highlight track — sharing the same
// process and track table. Extra spans whose ID is 0 are numbered after
// the recorded spans, keeping ids unique and the output deterministic.
func (t *Tracer) WriteChromeWith(w io.Writer, extra []Span) error {
	return WriteChromeSpans(w, t.Spans(), extra)
}

// WriteChromeSpans exports an explicit span list — the flight recorder's
// window, a filtered slice, any forest not backed by a retaining tracer —
// as the same deterministic trace_event JSON WriteChrome produces. extra
// follows the WriteChromeWith contract.
func WriteChromeSpans(w io.Writer, spans, extra []Span) error {
	bw := &errWriter{w: w}
	bw.print(`{"displayTimeUnit":"ms","traceEvents":[`)

	// Stable track numbering: sorted unique track names become tids 1..n.
	tids := make(map[string]int)
	var tracks []string
	collect := func(list []Span) {
		for _, s := range list {
			if _, ok := tids[s.Track]; !ok {
				tids[s.Track] = 0
				tracks = append(tracks, s.Track)
			}
		}
	}
	collect(spans)
	collect(extra)
	sort.Strings(tracks)
	for i, name := range tracks {
		tids[name] = i + 1
	}

	// Open spans clamp to the trace horizon — the latest instant any span
	// touches — so they render with their true extent instead of zero
	// duration, still tagged "unfinished".
	horizon := sim.Time(0)
	for _, list := range [][]Span{spans, extra} {
		for _, s := range list {
			if s.Start > horizon {
				horizon = s.Start
			}
			if s.End > horizon {
				horizon = s.End
			}
		}
	}

	first := true
	for _, name := range tracks {
		if !first {
			bw.print(",")
		}
		first = false
		bw.printf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tids[name], jsonString(name))
	}
	for _, s := range spans {
		if !first {
			bw.print(",")
		}
		first = false
		writeEvent(bw, s, tids[s.Track], horizon)
	}
	for i, s := range extra {
		if s.ID == 0 {
			s.ID = SpanID(len(spans) + i + 1)
		}
		if !first {
			bw.print(",")
		}
		first = false
		writeEvent(bw, s, tids[s.Track], horizon)
	}
	bw.print("]}\n")
	return bw.err
}

// writeEvent emits one span or instant as a trace_event record.
func writeEvent(bw *errWriter, s Span, tid int, horizon sim.Time) {
	if s.Ctr {
		// Counter events carry the sampled value in args keyed by the
		// counter name; the viewer plots them as a stepped series. The
		// value renders via FormatFloat('g', -1) — the shortest exact
		// representation — so exports stay byte-deterministic.
		bw.printf(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":%s,"args":{%s:%s}}`,
			tid, micros(s.Start), jsonString(s.Name), jsonString(s.Name),
			strconv.FormatFloat(s.Value, 'g', -1, 64))
		return
	}
	if s.Inst {
		bw.printf(`{"ph":"i","pid":1,"tid":%d,"s":"t","ts":%s,"name":%s,"args":{`,
			tid, micros(s.Start), jsonString(s.Name))
		writeArgs(bw, s, false)
		bw.print("}}")
		return
	}
	end, unfinished := s.End, false
	if end == openEnd {
		end, unfinished = horizon, true
	}
	bw.printf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{`,
		tid, micros(s.Start), micros(sim.Time(end.Sub(s.Start))), jsonString(s.Name))
	writeArgs(bw, s, unfinished)
	bw.print("}}")
}

// writeArgs emits the span's id/parent and tags as the args object body.
func writeArgs(bw *errWriter, s Span, unfinished bool) {
	bw.printf(`"id":%d`, s.ID)
	if s.Parent != 0 {
		bw.printf(`,"parent":%d`, s.Parent)
	}
	if unfinished {
		bw.print(`,"unfinished":"1"`)
	}
	for _, tag := range s.Tags {
		bw.printf(",%s:%s", jsonString(tag.Key), jsonString(tag.Value))
	}
}

// micros renders a nanosecond virtual timestamp as microseconds with
// nanosecond precision — trace_event's ts/dur unit.
func micros(t sim.Time) string {
	ns := int64(t)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Go string always marshals; keep the exporter total anyway.
		return `"?"`
	}
	return string(b)
}

// errWriter latches the first write error so the emitters stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) print(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}
