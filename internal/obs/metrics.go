package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"harl/internal/sim"
	"harl/internal/stats"
)

// The metrics registry generalizes the simulator's scattered counters
// (Server.DiskBusy, FaultStats, Engine.Processed) into named, labelled
// instruments that can be snapshotted at any virtual time. Like the
// tracer, a nil *Registry is a valid disabled registry: instrument
// lookups return nil and every instrument method is nil-receiver safe,
// so hot paths update counters unconditionally without branching on
// whether metrics are on.
//
// The registry is single-goroutine, like everything on the engine loop.

// Counter is a monotonically increasing integer instrument.
type Counter struct{ v int64 }

// Add increases the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc adds one; nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Set overwrites the value — for counters mirrored from an existing
// accumulator at snapshot time; nil-safe.
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a float instrument that can move both ways.
type Gauge struct{ v float64 }

// Set overwrites the gauge; nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the gauge; nil-safe.
func (g *Gauge) Add(v float64) {
	if g != nil {
		g.v += v
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a binned distribution instrument wrapping
// stats.Histogram.
type Histogram struct{ h *stats.Histogram }

// Observe records one sample; nil-safe.
func (h *Histogram) Observe(x float64) {
	if h != nil {
		h.h.Add(x)
	}
}

// Snapshot exposes the underlying histogram (nil for a nil instrument).
func (h *Histogram) Snapshot() *stats.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// Merge folds another histogram instrument's buckets into h. Both must
// share bucket geometry (stats.Histogram.Merge panics otherwise). Either
// side may be nil/disabled: merging from nil is a no-op, merging into
// nil drops the samples — exactly the disabled-instrument contract.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	h.h.Merge(other.h)
}

// Bins returns the bucket count (0 for a nil instrument).
func (h *Histogram) Bins() int {
	if h == nil {
		return 0
	}
	return h.h.Bins()
}

// BinBounds returns bucket i's half-open range [lo, hi); (0, 0) for a
// nil instrument.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	if h == nil {
		return 0, 0
	}
	return h.h.BinBounds(i)
}

// metricKind tags a registry entry's instrument type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument: a name plus its rendered label
// set, exactly one of the three instrument pointers non-nil. name and
// labels (key-sorted) are kept alongside the rendered key so exporters
// that need structure back — the Prometheus text format groups series
// into families and re-renders labels per sample line — never parse the
// key.
type metric struct {
	key    string
	name   string
	labels []Tag
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named instruments. nil is a disabled registry.
type Registry struct {
	byKey map[string]*metric
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// sortLabels returns a key-sorted copy of a label set (nil when empty).
func sortLabels(labels []Tag) []Tag {
	if len(labels) == 0 {
		return nil
	}
	sorted := append([]Tag(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return sorted
}

// metricKey renders name{k="v",...} with labels sorted by key, so the
// same instrument is found regardless of label order at the call site.
func metricKey(name string, labels []Tag) string {
	if len(labels) == 0 {
		return name
	}
	sorted := sortLabels(labels)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the entry for (name, labels), panicking on a
// kind clash — reusing one key for two instrument types is always a bug.
func (r *Registry) lookup(name string, kind metricKind, labels []Tag) *metric {
	key := metricKey(name, labels)
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered with conflicting kinds", key))
		}
		return m
	}
	m := &metric{key: key, name: name, labels: sortLabels(labels), kind: kind}
	r.byKey[key] = m
	return m
}

// Counter returns the counter named name with the given labels, creating
// it on first use. A nil registry returns a nil (disabled) counter.
func (r *Registry) Counter(name string, labels ...Tag) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindCounter, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name string, labels ...Tag) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindGauge, labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the histogram named name with the given labels,
// created with bins equal-width bins over [lo, hi) on first use.
func (r *Registry) Histogram(name string, lo, hi float64, bins int, labels ...Tag) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindHistogram, labels)
	if m.h == nil {
		m.h = &Histogram{h: stats.NewHistogram(lo, hi, bins)}
	}
	return m.h
}

// CounterValue reads a counter by name/labels without creating it — for
// reports and tests. Returns 0 when absent.
func (r *Registry) CounterValue(name string, labels ...Tag) int64 {
	if r == nil {
		return 0
	}
	if m, ok := r.byKey[metricKey(name, labels)]; ok && m.kind == kindCounter {
		return m.c.Value()
	}
	return 0
}

// GaugeValue reads a gauge by name/labels without creating it.
func (r *Registry) GaugeValue(name string, labels ...Tag) float64 {
	if r == nil {
		return 0
	}
	if m, ok := r.byKey[metricKey(name, labels)]; ok && m.kind == kindGauge {
		return m.g.Value()
	}
	return 0
}

// WriteText dumps every instrument in key-sorted order — a deterministic
// plain-text snapshot at the given virtual time. Histograms print their
// sample count, NaN count, and non-empty bins.
func (r *Registry) WriteText(w io.Writer, at sim.Time) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# metrics disabled")
		return err
	}
	if _, err := fmt.Fprintf(w, "# virtual time %s\n", at); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := r.byKey[k]
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", k, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", k, strconv.FormatFloat(m.g.Value(), 'g', -1, 64))
		case kindHistogram:
			h := m.h.Snapshot()
			_, err = fmt.Fprintf(w, "%s histogram samples=%d nan=%d\n", k, h.Total(), h.NaNs)
			if err != nil {
				return err
			}
			width := (h.Hi - h.Lo) / float64(len(h.Counts))
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if _, err = fmt.Fprintf(w, "  [%g,%g) %d\n",
					h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
