package obs

import (
	"bytes"
	"strings"
	"testing"

	"harl/internal/sim"
)

// collectSink retains every finalized span a streaming tracer delivers,
// in delivery order.
type collectSink struct{ got []Span }

func (c *collectSink) OnSpan(s Span) { c.got = append(c.got, s) }

// driveTrace runs the same instrumented scenario against any tracer:
// nested spans, an instant, a retroactive emit, and a counter sample.
func driveTrace(e *sim.Engine, tr *Tracer) {
	root := tr.Begin("cn0", "op", 0, T("file", "f"))
	e.Schedule(sim.Millisecond, func() {
		inner := tr.Begin("srv0", "disk", root, TInt("bytes", 4096))
		tr.Instant("srv0", "fault.crash", 0, T("kind", "crash"))
		e.Schedule(2*sim.Millisecond, func() {
			tr.End(inner, T("status", "ok"))
			tr.Emit("net", "xfer", root, sim.Time(0), e.Now())
			tr.Counter("srv0", "queue", e.Now(), 3)
			tr.End(root, T("status", "ok"))
		})
	})
	e.Run()
}

func TestStreamTracerMatchesRetaining(t *testing.T) {
	// Retaining reference run.
	re := sim.NewEngine(1)
	rt := NewTracer(re)
	driveTrace(re, rt)

	// Streaming run of the same scenario.
	se := sim.NewEngine(1)
	sink := &collectSink{}
	st := NewStreamTracer(se, sink)
	driveTrace(se, st)

	if !st.Streaming() || rt.Streaming() {
		t.Fatal("Streaming() misreports tracer mode")
	}
	if st.Len() != 0 || st.Spans() != nil {
		t.Fatalf("streaming tracer retained %d spans", st.Len())
	}
	if len(st.open) != 0 {
		t.Fatalf("%d spans left open after run", len(st.open))
	}
	want := rt.Spans()
	if len(sink.got) != len(want) {
		t.Fatalf("sink got %d spans, retaining recorded %d", len(sink.got), len(want))
	}
	// Same span set with identical IDs, regardless of delivery order.
	byID := make(map[SpanID]Span, len(sink.got))
	for _, s := range sink.got {
		byID[s.ID] = s
	}
	for _, w := range want {
		g, ok := byID[w.ID]
		if !ok {
			t.Fatalf("span %d (%s) never delivered", w.ID, w.Name)
		}
		if g.Name != w.Name || g.Track != w.Track || g.Parent != w.Parent ||
			g.Start != w.Start || g.End != w.End || g.Inst != w.Inst ||
			g.Ctr != w.Ctr || g.Value != w.Value || len(g.Tags) != len(w.Tags) {
			t.Fatalf("span %d diverged: stream=%+v retain=%+v", w.ID, g, w)
		}
	}
}

func TestStreamTracerDropsBogusEnd(t *testing.T) {
	e := sim.NewEngine(1)
	sink := &collectSink{}
	tr := NewStreamTracer(e, sink)
	id := tr.Begin("cn0", "op", 0)
	tr.End(id)
	tr.End(id) // double End: unknown by now
	tr.End(999)
	if tr.Dropped() != 2 {
		t.Fatalf("dropped=%d, want 2", tr.Dropped())
	}
	tr.End(0) // span 0 stays a silent no-op
	if tr.Dropped() != 2 {
		t.Fatal("End(0) counted as dropped")
	}
	if len(sink.got) != 1 {
		t.Fatalf("sink got %d spans, want 1", len(sink.got))
	}
}

func TestWriteChromeSpansMatchesMethod(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e)
	driveTrace(e, tr)
	extra := []Span{{Track: "critpath", Name: "hl", Start: 0, End: sim.Time(5)}}

	var viaMethod, viaFunc bytes.Buffer
	if err := tr.WriteChromeWith(&viaMethod, extra); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeSpans(&viaFunc, tr.Spans(), extra); err != nil {
		t.Fatal(err)
	}
	if viaMethod.String() != viaFunc.String() {
		t.Fatal("WriteChromeSpans output diverged from WriteChromeWith")
	}
}

func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", T("op", "write"), T("tier", "ssd")).Add(7)
	r.Counter("ops_total", T("op", "read"), T("tier", "ssd")).Add(3)
	r.Gauge("drift_score").Set(0.25)
	h := r.Histogram("latency_seconds", 0, 1, 4)
	h.Observe(0.1)
	h.Observe(0.1)
	h.Observe(0.9)

	want := strings.Join([]string{
		`# virtual time 1.5ms`,
		`# TYPE drift_score gauge`,
		`drift_score 0.25`,
		`# TYPE latency_seconds histogram`,
		`latency_seconds_bucket{le="0.25"} 2`,
		`latency_seconds_bucket{le="0.5"} 2`,
		`latency_seconds_bucket{le="0.75"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		`latency_seconds_count 3`,
		`# TYPE ops_total counter`,
		`ops_total{op="read",tier="ssd"} 3`,
		`ops_total{op="write",tier="ssd"} 7`,
		``,
	}, "\n")

	var a, b bytes.Buffer
	if err := r.WriteProm(&a, sim.Time(1500*sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if a.String() != want {
		t.Fatalf("prom export:\n%s\nwant:\n%s", a.String(), want)
	}
	if err := r.WriteProm(&b, sim.Time(1500*sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("prom export not deterministic across calls")
	}
}

func TestWritePromNilAndEscaping(t *testing.T) {
	var nilReg *Registry
	var buf bytes.Buffer
	if err := nilReg.WriteProm(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil registry export: %q", buf.String())
	}

	r := NewRegistry()
	r.Counter("weird_total", T("path", `a"b\c`)).Inc()
	buf.Reset()
	if err := r.WriteProm(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `weird_total{path="a\"b\\c"} 1`) {
		t.Fatalf("label escaping broken:\n%s", buf.String())
	}
}
