package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"harl/internal/sim"
)

// Prometheus text-format export of the metrics registry. Like every
// exporter in this package the output is byte-deterministic: families
// sort by name, series within a family sort by their rendered label set,
// and floats render via FormatFloat('g', -1) — the shortest exact
// representation. Counters export as "counter", gauges as "gauge", and
// histograms as cumulative "_bucket{le=...}" series plus "_count" (the
// backing stats.Histogram tracks no sum, so no "_sum" series is
// emitted). A leading comment stamps the virtual snapshot time, so two
// same-seed runs export identical bytes.

// WriteProm dumps the registry in the Prometheus text exposition format
// at the given virtual time.
func (r *Registry) WriteProm(w io.Writer, at sim.Time) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# metrics disabled")
		return err
	}
	bw := &errWriter{w: w}
	bw.printf("# virtual time %s\n", at)

	// Group series into families; within a family every series shares the
	// instrument kind (lookup panics on clashes), so the family's TYPE
	// line is well defined.
	families := make(map[string][]*metric, len(r.byKey))
	for _, m := range r.byKey {
		families[m.name] = append(families[m.name], m)
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		series := families[name]
		sort.Slice(series, func(i, j int) bool { return series[i].key < series[j].key })
		bw.printf("# TYPE %s %s\n", name, promType(series[0].kind))
		for _, m := range series {
			switch m.kind {
			case kindCounter:
				bw.printf("%s%s %d\n", name, promLabels(m.labels, "", 0), m.c.Value())
			case kindGauge:
				bw.printf("%s%s %s\n", name, promLabels(m.labels, "", 0), promFloat(m.g.Value()))
			case kindHistogram:
				h := m.h.Snapshot()
				width := (h.Hi - h.Lo) / float64(len(h.Counts))
				cum := int64(0)
				for i, c := range h.Counts {
					cum += c
					bw.printf("%s_bucket%s %d\n", name,
						promLabels(m.labels, promFloat(h.Lo+float64(i+1)*width), 1), cum)
				}
				bw.printf("%s_bucket%s %d\n", name, promLabels(m.labels, "+Inf", 1), cum)
				bw.printf("%s_count%s %d\n", name, promLabels(m.labels, "", 0), h.Total())
			}
		}
	}
	return bw.err
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promFloat renders a float in the shortest exact form.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders a label set as {k="v",...}; le ("" to omit, mode 1
// to include) appends the histogram bucket bound last, matching the
// key-sorted base labels. Returns "" for an empty set.
func promLabels(labels []Tag, le string, mode int) string {
	if len(labels) == 0 && mode == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if mode == 1 {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
