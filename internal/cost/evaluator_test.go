package cost

import (
	"math"
	"math/rand"
	"testing"

	"harl/internal/device"
)

func evalParams() Params {
	return Params{
		M: 6, N: 2,
		NetUnit:   1.0 / (117 << 20),
		AlphaHMin: 3e-3, AlphaHMax: 7e-3, BetaH: 1.0 / (100 << 20),
		AlphaSRMin: 6e-4, AlphaSRMax: 1.2e-3, BetaSR: 1.0 / (400 << 20),
		AlphaSWMin: 8e-4, AlphaSWMax: 1.6e-3, BetaSW: 1.0 / (200 << 20),
	}
}

// TestEvaluatorBitIdentical pins the determinism contract: the cached
// evaluator must reproduce Params.RequestCost to the last bit across
// pairs (including the H==0 / S==0 extremes), operations, and offsets
// far beyond one striping round.
func TestEvaluatorBitIdentical(t *testing.T) {
	p := evalParams()
	rng := rand.New(rand.NewSource(21))
	pairs := [][2]int64{
		{4 << 10, 8 << 10},
		{0, 64 << 10},
		{64 << 10, 0},
		{36 << 10, 148 << 10},
		{1 << 20, 2 << 20},
	}
	for _, pair := range pairs {
		e, err := p.NewEvaluator(pair[0], pair[1])
		if err != nil {
			t.Fatalf("pair %v: %v", pair, err)
		}
		for trial := 0; trial < 300; trial++ {
			off := rng.Int63n(1 << 32)
			size := rng.Int63n(4<<20) + 1
			op := device.Read
			if trial%2 == 1 {
				op = device.Write
			}
			want := p.RequestCost(op, off, size, pair[0], pair[1])
			got := e.RequestCost(op, off, size)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("pair %v op %v (%d,%d): evaluator %v != direct %v", pair, op, off, size, got, want)
			}
			wb, gb := p.RequestBreakdown(op, off, size, pair[0], pair[1]), e.RequestBreakdown(op, off, size)
			if wb != gb {
				t.Fatalf("breakdown mismatch: %+v != %+v", gb, wb)
			}
		}
	}
}

func TestEvaluatorReset(t *testing.T) {
	p := evalParams()
	e, err := p.NewEvaluator(4<<10, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache under the first pair, then repin and re-verify: a
	// stale distribution would surface as a cost mismatch.
	e.RequestCost(device.Read, 12<<10, 512<<10)
	if err := e.Reset(16<<10, 64<<10); err != nil {
		t.Fatal(err)
	}
	if h, s := e.Pair(); h != 16<<10 || s != 64<<10 {
		t.Fatalf("Pair() = (%d,%d)", h, s)
	}
	want := p.RequestCost(device.Read, 12<<10, 512<<10, 16<<10, 64<<10)
	if got := e.RequestCost(device.Read, 12<<10, 512<<10); got != want {
		t.Fatalf("after Reset: %v != %v", got, want)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	p := evalParams()
	if _, err := p.NewEvaluator(0, 0); err == nil {
		t.Fatal("0-0 pair accepted")
	}
	if _, err := p.NewEvaluator(-4096, 8192); err == nil {
		t.Fatal("negative stripe accepted")
	}
	e, err := p.NewEvaluator(4096, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(0, 0); err == nil {
		t.Fatal("Reset to 0-0 accepted")
	}
	if got := e.RequestCost(device.Read, 0, 0); got != 0 {
		t.Fatalf("zero-size cost = %v", got)
	}
}
