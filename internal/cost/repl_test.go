package cost

import (
	"testing"

	"harl/internal/device"
)

func replTestParams() Params {
	return Params{
		M: 4, N: 4,
		NetUnit:   1e-9,
		AlphaHMin: 1e-4, AlphaHMax: 3e-4, BetaH: 2e-9,
		AlphaSRMin: 2e-5, AlphaSRMax: 8e-5, BetaSR: 1e-9,
		AlphaSWMin: 5e-5, AlphaSWMax: 2e-4, BetaSW: 4e-9,
	}
}

// R=0 and R=1 must both be bit-identical to the unreplicated model: the
// planner's (h, s) search with no replication axis may not move.
func TestReplCostR0R1Identical(t *testing.T) {
	base := replTestParams()
	r1 := base
	r1.R = 1
	for _, c := range []struct{ off, size, h, s int64 }{
		{0, 1 << 20, 64 << 10, 64 << 10},
		{12345, 3 << 20, 128 << 10, 32 << 10},
		{1 << 30, 4 << 10, 0, 64 << 10},
	} {
		for _, op := range []device.Op{device.Read, device.Write} {
			b0 := base.RequestBreakdown(op, c.off, c.size, c.h, c.s)
			b1 := r1.RequestBreakdown(op, c.off, c.size, c.h, c.s)
			if b0 != b1 {
				t.Fatalf("op=%v case=%+v: R=0 %+v != R=1 %+v", op, c, b0, b1)
			}
		}
	}
}

func TestReplCostWriteDearerReadUnchanged(t *testing.T) {
	base := replTestParams()
	r2 := base
	r2.R = 2
	off, size, h, s := int64(0), int64(1<<20), int64(64<<10), int64(64<<10)

	w0 := base.RequestBreakdown(device.Write, off, size, h, s)
	w2 := r2.RequestBreakdown(device.Write, off, size, h, s)
	if w2.Total() <= w0.Total() {
		t.Fatalf("r=2 write %.3e not dearer than r=1 %.3e", w2.Total(), w0.Total())
	}
	if w2.Network <= w0.Network || w2.Startup < w0.Startup {
		t.Fatalf("r=2 write terms %+v vs %+v", w2, w0)
	}
	if w2.Transfer != w0.Transfer {
		t.Fatalf("replication changed the storage-transfer term: %v vs %v", w2.Transfer, w0.Transfer)
	}

	r0 := base.RequestBreakdown(device.Read, off, size, h, s)
	rr := r2.RequestBreakdown(device.Read, off, size, h, s)
	if r0 != rr {
		t.Fatalf("reads pay for replication: %+v vs %+v", r0, rr)
	}

	r3 := base
	r3.R = 3
	w3 := r3.RequestBreakdown(device.Write, off, size, h, s)
	if w3.Total() <= w2.Total() {
		t.Fatalf("r=3 write %.3e not dearer than r=2 %.3e", w3.Total(), w2.Total())
	}
}

func TestReplCostValidate(t *testing.T) {
	p := replTestParams()
	p.R = -1
	if p.Validate() == nil {
		t.Fatal("negative R validated")
	}
	p.R = p.M + p.N + 1
	if p.Validate() == nil {
		t.Fatal("R beyond cluster size validated")
	}
	p.R = p.M + p.N
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplRebuildCost(t *testing.T) {
	p := replTestParams()
	if p.RebuildCost(0) != 0 || p.RebuildCost(-5) != 0 {
		t.Fatal("empty rebuild has nonzero cost")
	}
	one := p.RebuildCost(1 << 20)
	if one <= 0 {
		t.Fatal("rebuild cost not positive")
	}
	if two := p.RebuildCost(2 << 20); two != 2*one {
		t.Fatalf("rebuild cost not linear: %v vs 2*%v", two, one)
	}
}
