package cost

import (
	"fmt"

	"harl/internal/device"
	"harl/internal/layout"
	"harl/internal/netsim"
)

// Multi-profile cost model — the paper's first future-work item: "extend
// our cost model to accommodate more than two server performance
// profiles". The structure of Eqs. (1)-(8) generalizes directly: each
// tier contributes an order-statistics startup term and a transfer term
// for its largest sub-request, and the request cost takes the maximum
// across tiers for each of T_X, T_S and T_T.

// TierParams is one server class's Table I row pair (read and write
// profiles) plus its server count.
type TierParams struct {
	Name  string
	Count int

	ReadAlphaMin, ReadAlphaMax float64
	ReadBeta                   float64

	WriteAlphaMin, WriteAlphaMax float64
	WriteBeta                    float64
}

// Validate reports whether the tier is usable.
func (t TierParams) Validate() error {
	switch {
	case t.Count < 0:
		return fmt.Errorf("cost: tier %q has negative count", t.Name)
	case t.ReadAlphaMin < 0 || t.ReadAlphaMax < t.ReadAlphaMin:
		return fmt.Errorf("cost: tier %q has bad read startup range", t.Name)
	case t.WriteAlphaMin < 0 || t.WriteAlphaMax < t.WriteAlphaMin:
		return fmt.Errorf("cost: tier %q has bad write startup range", t.Name)
	case t.ReadBeta < 0 || t.WriteBeta < 0:
		return fmt.Errorf("cost: tier %q has negative unit transfer time", t.Name)
	}
	return nil
}

// MultiParams is the generalized parameter set.
type MultiParams struct {
	NetUnit float64
	Tiers   []TierParams
}

// Validate reports whether the parameters are usable.
func (p MultiParams) Validate() error {
	if p.NetUnit < 0 {
		return fmt.Errorf("cost: negative network unit time")
	}
	if len(p.Tiers) == 0 {
		return fmt.Errorf("cost: no tiers")
	}
	total := 0
	for _, t := range p.Tiers {
		if err := t.Validate(); err != nil {
			return err
		}
		total += t.Count
	}
	if total == 0 {
		return fmt.Errorf("cost: no servers across tiers")
	}
	return nil
}

// Counts returns the per-tier server counts in tier order.
func (p MultiParams) Counts() []int {
	counts := make([]int, len(p.Tiers))
	for i, t := range p.Tiers {
		counts[i] = t.Count
	}
	return counts
}

// MultiOf lifts the two-tier Params into the generalized form; the
// resulting model computes identical costs.
func MultiOf(p Params) MultiParams {
	return MultiParams{
		NetUnit: p.NetUnit,
		Tiers: []TierParams{
			{
				Name: "hserver", Count: p.M,
				ReadAlphaMin: p.AlphaHMin, ReadAlphaMax: p.AlphaHMax, ReadBeta: p.BetaH,
				WriteAlphaMin: p.AlphaHMin, WriteAlphaMax: p.AlphaHMax, WriteBeta: p.BetaH,
			},
			{
				Name: "sserver", Count: p.N,
				ReadAlphaMin: p.AlphaSRMin, ReadAlphaMax: p.AlphaSRMax, ReadBeta: p.BetaSR,
				WriteAlphaMin: p.AlphaSWMin, WriteAlphaMax: p.AlphaSWMax, WriteBeta: p.BetaSW,
			},
		},
	}
}

// RequestCost returns the modeled completion time of one request under
// per-tier stripe sizes (stripes[i] for tier i; 0 skips the tier).
func (p MultiParams) RequestCost(op device.Op, offset, size int64, stripes []int64) float64 {
	return p.RequestBreakdown(op, offset, size, stripes).Total()
}

// RequestBreakdown itemizes the generalized cost terms.
func (p MultiParams) RequestBreakdown(op device.Op, offset, size int64, stripes []int64) Breakdown {
	if len(stripes) != len(p.Tiers) {
		panic(fmt.Sprintf("cost: %d stripes for %d tiers", len(stripes), len(p.Tiers)))
	}
	if size <= 0 {
		return Breakdown{}
	}
	tl := layout.Tiered{Counts: p.Counts(), Stripes: stripes}
	if err := tl.Validate(); err != nil {
		panic(err)
	}
	d := tl.Distribute(offset, size)

	var b Breakdown
	for i, tier := range p.Tiers {
		maxSub := float64(d.Max[i])
		if net := maxSub * p.NetUnit; net > b.Network {
			b.Network = net
		}
		var alphaLo, alphaHi, beta float64
		if op == device.Read {
			alphaLo, alphaHi, beta = tier.ReadAlphaMin, tier.ReadAlphaMax, tier.ReadBeta
		} else {
			alphaLo, alphaHi, beta = tier.WriteAlphaMin, tier.WriteAlphaMax, tier.WriteBeta
		}
		if start := expectedMaxUniform(alphaLo, alphaHi, d.Touched[i]); start > b.Startup {
			b.Startup = start
		}
		if xfer := maxSub * beta; xfer > b.Transfer {
			b.Transfer = xfer
		}
	}
	return b
}

// CalibrateTiers fits a MultiParams against one device profile per tier
// plus the network — the generalized Section III-G measurement run.
func CalibrateTiers(profiles []device.Profile, counts []int, netCfg netsim.Config, reps int, seed int64) (MultiParams, error) {
	if len(profiles) == 0 || len(profiles) != len(counts) {
		return MultiParams{}, fmt.Errorf("cost: need matching profiles/counts, got %d/%d", len(profiles), len(counts))
	}
	var p MultiParams
	var err error
	if p.NetUnit, err = FitNetwork(netCfg, min(reps, 50), seed); err != nil {
		return MultiParams{}, err
	}
	for i, prof := range profiles {
		tier := TierParams{Name: prof.Name, Count: counts[i]}
		if counts[i] > 0 {
			rFit, err := FitDevice(prof, device.Read, reps, seed+int64(2*i)+1)
			if err != nil {
				return MultiParams{}, err
			}
			wFit, err := FitDevice(prof, device.Write, reps, seed+int64(2*i)+2)
			if err != nil {
				return MultiParams{}, err
			}
			tier.ReadAlphaMin, tier.ReadAlphaMax, tier.ReadBeta = rFit.AlphaMin, rFit.AlphaMax, rFit.Beta
			tier.WriteAlphaMin, tier.WriteAlphaMax, tier.WriteBeta = wFit.AlphaMin, wFit.AlphaMax, wFit.Beta
		}
		p.Tiers = append(p.Tiers, tier)
	}
	if err := p.Validate(); err != nil {
		return MultiParams{}, err
	}
	return p, nil
}
