package cost

import (
	"harl/internal/device"
	"harl/internal/layout"
)

// Evaluator scores requests under one pinned (h, s) stripe candidate.
// It is the inner loop of Algorithm 2's grid search: RequestCost
// re-validates the striping and re-derives its round geometry on every
// call, while an Evaluator does both once per candidate and memoizes the
// sub-request Distribution of each distinct request shape.
//
// The memoization key is (Canonical(offset), size): distributions are
// periodic in the striping round (layout.Geometry.Canonical), so the many
// same-size, stripe-aligned requests of a region collapse to a handful of
// geometry computations. All quantities are integers and the final cost
// arithmetic is shared with RequestBreakdown, so evaluator results are
// bit-identical to the uncached path.
//
// An Evaluator is not safe for concurrent use; parallel searches give
// each worker its own and Reset it between candidates.
type Evaluator struct {
	p     Params
	geo   layout.Geometry
	cache map[requestShape]layout.Distribution
}

// requestShape identifies a distribution-equivalent request class under
// the pinned candidate: its offset within the striping round and its size.
type requestShape struct {
	off, size int64
}

// NewEvaluator returns an evaluator pinned to stripe sizes (h, s) on this
// parameter set's M+N servers.
func (p Params) NewEvaluator(h, s int64) (*Evaluator, error) {
	e := &Evaluator{p: p, cache: make(map[requestShape]layout.Distribution)}
	if err := e.Reset(h, s); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-pins the evaluator to a new candidate pair, dropping the
// memoized distributions (they are geometry-specific) but keeping the
// allocated cache storage.
func (e *Evaluator) Reset(h, s int64) error {
	geo, err := layout.NewGeometry(layout.Striping{M: e.p.M, N: e.p.N, H: h, S: s})
	if err != nil {
		return err
	}
	e.geo = geo
	clear(e.cache)
	return nil
}

// Pair returns the pinned (h, s) candidate.
func (e *Evaluator) Pair() (h, s int64) {
	st := e.geo.Striping()
	return st.H, st.S
}

// RequestCost returns the modeled completion time (seconds) of one
// request, bit-identical to Params.RequestCost under the pinned pair.
func (e *Evaluator) RequestCost(op device.Op, offset, size int64) float64 {
	return e.RequestBreakdown(op, offset, size).Total()
}

// RequestCostDirect is RequestCost through the pinned geometry but
// without consulting the memo: cheaper when the caller already
// deduplicates repeated requests (HARL's grid search memoizes by sample
// index instead, which costs no hashing), still bit-identical to
// Params.RequestCost.
func (e *Evaluator) RequestCostDirect(op device.Op, offset, size int64) float64 {
	if size <= 0 {
		return 0
	}
	return e.p.distributionBreakdown(op, e.geo.Distribute(offset, size)).Total()
}

// RequestBreakdown is RequestCost with the three terms itemized.
func (e *Evaluator) RequestBreakdown(op device.Op, offset, size int64) Breakdown {
	if size <= 0 {
		return Breakdown{}
	}
	shape := requestShape{off: e.geo.Canonical(offset), size: size}
	d, ok := e.cache[shape]
	if !ok {
		d = e.geo.Distribute(shape.off, size)
		e.cache[shape] = d
	}
	return e.p.distributionBreakdown(op, d)
}
