package cost

import (
	"math"
	"testing"
	"testing/quick"

	"harl/internal/device"
	"harl/internal/netsim"
)

// testParams gives round numbers for hand-worked checks.
func testParams() Params {
	return Params{
		M: 2, N: 1,
		NetUnit:   1e-8,                               // 100 MB/s
		AlphaHMin: 4e-3, AlphaHMax: 8e-3, BetaH: 1e-8, // HDD: 4-8ms, 100MB/s
		AlphaSRMin: 1e-4, AlphaSRMax: 2e-4, BetaSR: 2e-9, // SSD read: 0.1-0.2ms, 500MB/s
		AlphaSWMin: 2e-4, AlphaSWMax: 4e-4, BetaSW: 5e-9, // SSD write: 0.2-0.4ms, 200MB/s
	}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.M, p.N = 0, 0 },
		func(p *Params) { p.M = -1 },
		func(p *Params) { p.NetUnit = -1 },
		func(p *Params) { p.AlphaHMax = p.AlphaHMin - 1 },
		func(p *Params) { p.AlphaSRMin = -1 },
		func(p *Params) { p.AlphaSWMax = p.AlphaSWMin - 1 },
		func(p *Params) { p.BetaH = -1 },
		func(p *Params) { p.BetaSW = -1 },
	}
	for i, mutate := range mutations {
		p := testParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestExpectedMaxUniform(t *testing.T) {
	// One server: expectation is the midpoint.
	if got := expectedMaxUniform(2, 4, 1); math.Abs(got-3) > 1e-12 {
		t.Fatalf("m=1: %v, want 3", got)
	}
	// Many servers: approaches the max.
	if got := expectedMaxUniform(2, 4, 1000); got < 3.99 {
		t.Fatalf("m=1000: %v, want ~4", got)
	}
	if expectedMaxUniform(2, 4, 0) != 0 {
		t.Fatal("m=0 should contribute nothing")
	}
	// Degenerate range.
	if got := expectedMaxUniform(5, 5, 7); got != 5 {
		t.Fatalf("point distribution: %v", got)
	}
}

func TestRequestBreakdownHandWorked(t *testing.T) {
	p := testParams()
	// Layout M=2,N=1,h=10KB,s=30KB (round 50KB). Request [0K, 50KB):
	// covers one full round: s_m=10K on each of 2 HServers, s_n=30K on 1
	// SServer.
	const k = 1 << 10
	b := p.RequestBreakdown(device.Read, 0, 50*k, 10*k, 30*k)
	// T_X = max(10K,30K)*t = 30720 * 1e-8
	wantNet := 30 * k * 1e-8
	if math.Abs(b.Network-wantNet) > 1e-12 {
		t.Fatalf("network = %v, want %v", b.Network, wantNet)
	}
	// T_S: HServers: 4ms + (2/3)(4ms) = 6.667ms; SServer read:
	// 0.1 + (1/2)(0.1) = 0.15ms; max = HServer term.
	wantStart := 4e-3 + 2.0/3.0*4e-3
	if math.Abs(b.Startup-wantStart) > 1e-9 {
		t.Fatalf("startup = %v, want %v", b.Startup, wantStart)
	}
	// T_T = max(10K*1e-8, 30K*2e-9) = max(102.4us, 61.4us).
	wantXfer := 10 * k * 1e-8
	if math.Abs(b.Transfer-wantXfer) > 1e-12 {
		t.Fatalf("transfer = %v, want %v", b.Transfer, wantXfer)
	}
	if math.Abs(b.Total()-(wantNet+wantStart+wantXfer)) > 1e-12 {
		t.Fatal("total != sum of parts")
	}
}

func TestWriteUsesWriteParameters(t *testing.T) {
	p := testParams()
	p.M = 0
	p.N = 2 // SServers only, h=0
	const size = 1 << 20
	r := p.RequestCost(device.Read, 0, size, 0, 512<<10)
	w := p.RequestCost(device.Write, 0, size, 0, 512<<10)
	if w <= r {
		t.Fatalf("SSD-only write (%v) should cost more than read (%v)", w, r)
	}
}

func TestCostZeroSize(t *testing.T) {
	p := testParams()
	if p.RequestCost(device.Read, 0, 0, 4096, 8192) != 0 {
		t.Fatal("zero-size request should be free")
	}
}

func TestCostPanicsOnUnusableLayout(t *testing.T) {
	p := testParams()
	defer func() {
		if recover() == nil {
			t.Fatal("h=s=0 should panic")
		}
	}()
	p.RequestCost(device.Read, 0, 100, 0, 0)
}

// The model must reproduce the qualitative trade-off HARL exploits: for a
// small request, placing data only on SServers beats the default balanced
// layout, because the HServer startup dominates.
func TestSmallRequestsPreferSServers(t *testing.T) {
	p := testParams()
	p.M, p.N = 6, 2
	const size = 128 << 10
	balanced := p.RequestCost(device.Read, 0, size, 64<<10, 64<<10)
	ssdOnly := p.RequestCost(device.Read, 0, size, 0, 64<<10)
	if ssdOnly >= balanced {
		t.Fatalf("SSD-only (%v) should beat balanced (%v) for 128KB requests", ssdOnly, balanced)
	}
}

// For a large request, HServer parallelism must start paying for itself:
// with many HServers, an enormous request should prefer spreading over
// everything rather than queueing on two SServers.
func TestLargeRequestsUseBothClasses(t *testing.T) {
	p := testParams()
	p.M, p.N = 6, 2
	const size = 64 << 20
	spread := p.RequestCost(device.Read, 0, size, 1<<20, 4<<20)
	ssdOnly := p.RequestCost(device.Read, 0, size, 0, 1<<20)
	if spread >= ssdOnly {
		t.Fatalf("spreading 64MB (%v) should beat SSD-only (%v)", spread, ssdOnly)
	}
}

// Property: cost is non-negative and monotone non-decreasing in request
// size for a fixed layout and offset.
func TestCostMonotoneInSizeProperty(t *testing.T) {
	p := testParams()
	p.M, p.N = 6, 2
	prop := func(a, b uint32, off32 uint32) bool {
		sa, sb := int64(a%(8<<20))+1, int64(b%(8<<20))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		off := int64(off32 % (1 << 24))
		ca := p.RequestCost(device.Read, off, sa, 64<<10, 256<<10)
		cb := p.RequestCost(device.Read, off, sb, 64<<10, 256<<10)
		return ca >= 0 && ca <= cb+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the breakdown terms are individually non-negative and the
// total is their sum.
func TestBreakdownConsistencyProperty(t *testing.T) {
	p := testParams()
	p.M, p.N = 6, 2
	prop := func(size32, h16, s16 uint16, opBit bool) bool {
		h := int64(h16%128) * 4096
		s := int64(s16%128) * 4096
		if h == 0 && s == 0 {
			return true
		}
		op := device.Read
		if opBit {
			op = device.Write
		}
		b := p.RequestBreakdown(op, 0, int64(size32)+1, h, s)
		if b.Network < 0 || b.Startup < 0 || b.Transfer < 0 {
			return false
		}
		return math.Abs(b.Total()-(b.Network+b.Startup+b.Transfer)) < 1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitDeviceRecoversProfile(t *testing.T) {
	prof := device.DefaultHDD()
	fit, err := FitDevice(prof, device.Read, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	// β should be close to 1/ReadRate.
	wantBeta := 1 / prof.ReadRate
	if math.Abs(fit.Beta-wantBeta)/wantBeta > 0.15 {
		t.Fatalf("beta = %v, want ~%v", fit.Beta, wantBeta)
	}
	// The startup range should bracket the true range (within fit noise).
	wantLo, wantHi := prof.ReadStartupMin.Seconds(), prof.ReadStartupMax.Seconds()
	if fit.AlphaMin > wantLo*1.3 || fit.AlphaMax < wantHi*0.7 {
		t.Fatalf("alpha fit [%v,%v], true [%v,%v]", fit.AlphaMin, fit.AlphaMax, wantLo, wantHi)
	}
	if _, err := FitDevice(prof, device.Read, 1, 1); err == nil {
		t.Fatal("reps < 2 should error")
	}
	bad := prof
	bad.ReadRate = -1
	if _, err := FitDevice(bad, device.Read, 10, 1); err == nil {
		t.Fatal("bad profile should error")
	}
}

func TestFitNetworkApproximatesBandwidth(t *testing.T) {
	cfg := netsim.GigabitEthernet()
	unit, err := FitNetwork(cfg, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / cfg.Bandwidth
	// The probe includes latency, so the unit time is slightly above 1/B.
	if unit < want || unit > want*1.5 {
		t.Fatalf("unit = %v, want within [%v, %v]", unit, want, want*1.5)
	}
	if _, err := FitNetwork(netsim.Config{}, 5, 1); err == nil {
		t.Fatal("bad config should error")
	}
	if _, err := FitNetwork(cfg, 0, 1); err == nil {
		t.Fatal("zero reps should error")
	}
}

func TestCalibrateEndToEnd(t *testing.T) {
	p, err := Calibrate(device.DefaultHDD(), device.DefaultSSD(), netsim.GigabitEthernet(), 6, 2, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v", err)
	}
	if p.M != 6 || p.N != 2 {
		t.Fatalf("counts = %d/%d", p.M, p.N)
	}
	// The calibrated model must preserve the class ordering the paper's
	// Table I describes: HServer startup >> SServer startup, SSD write
	// slower than SSD read.
	if p.AlphaHMax <= p.AlphaSRMax {
		t.Fatal("HServer startup should exceed SServer startup")
	}
	if p.BetaSW <= p.BetaSR {
		t.Fatal("SServer write unit time should exceed read")
	}
	if p.BetaH <= p.BetaSR {
		t.Fatal("HServer transfer should be slower than SServer read")
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	a, err := Calibrate(device.DefaultHDD(), device.DefaultSSD(), netsim.GigabitEthernet(), 6, 2, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(device.DefaultHDD(), device.DefaultSSD(), netsim.GigabitEthernet(), 6, 2, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different params:\n%+v\n%+v", a, b)
	}
}
