package cost

import (
	"fmt"
	"math/rand"

	"harl/internal/device"
	"harl/internal/netsim"
	"harl/internal/sim"
)

// Calibration mirrors the measurement procedure of Section III-G: before
// the analysis phase, HARL probes one file server of each class with
// repeated read/write accesses to estimate the startup time α and unit
// transfer time β, and a client/server node pair to estimate the network
// unit transfer time t. The probe counts are configurable, as in the
// paper ("we repeat the tests thousands of times").

// DefaultProbes is the default number of probe accesses per (device, op,
// size) combination.
const DefaultProbes = 2000

// probeSizes are the two access sizes used to separate the startup term
// from the transfer term by linear fit.
var probeSizes = [2]int64{64 << 10, 1 << 20}

// DeviceFit is the fitted storage profile of one device class and
// operation: startup uniform on [AlphaMin, AlphaMax] plus Beta seconds
// per byte.
type DeviceFit struct {
	AlphaMin float64
	AlphaMax float64
	Beta     float64
}

// FitDevice probes a fresh device built from prof with reps accesses per
// probe size at random offsets and fits (α, β). Random offsets defeat the
// device's sequential-access discount, so the fit reflects the scattered
// sub-request pattern striping produces.
func FitDevice(prof device.Profile, op device.Op, reps int, seed int64) (DeviceFit, error) {
	if reps < 2 {
		return DeviceFit{}, fmt.Errorf("cost: need >= 2 probes, got %d", reps)
	}
	dev, err := device.New(prof)
	if err != nil {
		return DeviceFit{}, err
	}
	rng := rand.New(rand.NewSource(seed))

	means := [2]float64{}
	samples := make([][]float64, 2)
	for si, size := range probeSizes {
		var sum float64
		for i := 0; i < reps; i++ {
			// Spread probes over the device, stride > max probe size so
			// consecutive probes never look sequential.
			off := rng.Int63n(prof.Capacity/4/(4<<20)) * (4 << 20)
			t := dev.ServiceTime(op, off, size, rng).Seconds()
			samples[si] = append(samples[si], t)
			sum += t
		}
		means[si] = sum / float64(reps)
	}

	var fit DeviceFit
	fit.Beta = (means[1] - means[0]) / float64(probeSizes[1]-probeSizes[0])
	if fit.Beta < 0 {
		fit.Beta = 0
	}
	// Recover the startup distribution from the small-size samples.
	fit.AlphaMin = samples[0][0] - float64(probeSizes[0])*fit.Beta
	fit.AlphaMax = fit.AlphaMin
	for _, t := range samples[0] {
		a := t - float64(probeSizes[0])*fit.Beta
		if a < fit.AlphaMin {
			fit.AlphaMin = a
		}
		if a > fit.AlphaMax {
			fit.AlphaMax = a
		}
	}
	if fit.AlphaMin < 0 {
		fit.AlphaMin = 0
	}
	if fit.AlphaMax < fit.AlphaMin {
		fit.AlphaMax = fit.AlphaMin
	}
	return fit, nil
}

// FitNetwork estimates the unit network transfer time t by timing large
// transfers between a dedicated client/server node pair on a private
// simulation, as the paper does with a pair of physical nodes.
func FitNetwork(cfg netsim.Config, reps int, seed int64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if reps < 1 {
		return 0, fmt.Errorf("cost: need >= 1 probe, got %d", reps)
	}
	const probe = 4 << 20
	e := sim.NewEngine(seed)
	net := netsim.MustNew(e, cfg)
	a, b := net.AddNode("probe-client"), net.AddNode("probe-server")
	var total sim.Duration
	var run func(i int)
	run = func(i int) {
		if i == reps {
			return
		}
		start := e.Now()
		net.Transfer(a, b, probe, func(at sim.Time) {
			total += at.Sub(start)
			run(i + 1)
		})
	}
	e.Schedule(0, func() { run(0) })
	e.Run()
	return total.Seconds() / float64(reps) / float64(probe), nil
}

// Calibrate assembles the full parameter set for a hybrid system of m
// HServers (profile hProf) and n SServers (profile sProf) on the given
// network. HServers are fitted on the read path only, matching Table I's
// single HServer profile; SServers are fitted separately for reads and
// writes.
func Calibrate(hProf, sProf device.Profile, netCfg netsim.Config, m, n, reps int, seed int64) (Params, error) {
	p := Params{M: m, N: n}
	var err error
	if p.NetUnit, err = FitNetwork(netCfg, min(reps, 50), seed); err != nil {
		return Params{}, err
	}
	if m > 0 {
		hFit, err := FitDevice(hProf, device.Read, reps, seed+1)
		if err != nil {
			return Params{}, err
		}
		p.AlphaHMin, p.AlphaHMax, p.BetaH = hFit.AlphaMin, hFit.AlphaMax, hFit.Beta
	}
	if n > 0 {
		srFit, err := FitDevice(sProf, device.Read, reps, seed+2)
		if err != nil {
			return Params{}, err
		}
		p.AlphaSRMin, p.AlphaSRMax, p.BetaSR = srFit.AlphaMin, srFit.AlphaMax, srFit.Beta
		swFit, err := FitDevice(sProf, device.Write, reps, seed+3)
		if err != nil {
			return Params{}, err
		}
		p.AlphaSWMin, p.AlphaSWMax, p.BetaSW = swFit.AlphaMin, swFit.AlphaMax, swFit.Beta
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
