package cost

import "math"

// RebuildCost models the time (seconds) to re-replicate the given byte
// count after a replica is lost: every byte crosses the network once and
// is written once at the slower of the two tiers' store rates. The
// planner charges it, weighted by failure likelihood, when scoring a
// region's replication factor — higher r loses more bytes per crash but
// keeps more copies to rebuild from; this term prices the former.
func (p Params) RebuildCost(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) * (p.NetUnit + math.Max(p.BetaH, p.BetaSW))
}
