// Package cost implements the analytical data-access cost model of
// Section III-D of the paper: the expected I/O completion time of one file
// request in a hybrid PFS, as a function of the I/O pattern, the system
// architecture, network and storage parameters (Table I), and the data
// layout (stripe sizes h on HServers and s on SServers).
//
// The cost of a request is T = T_X + T_S + T_T:
//
//   - T_X, the network transfer time, is the larger of the biggest
//     sub-request on either class times the unit network time t (Eq. 1);
//   - T_S, the storage startup time, is the expected maximum of the
//     per-server startup draws. For m servers with startup uniform on
//     [αmin, αmax] the expected maximum is αmin + m/(m+1)·(αmax-αmin)
//     (Eqs. 2-4), and T_S is the larger of the HServer and SServer terms
//     (Eq. 5);
//   - T_T, the storage transfer time, is the larger of s_m·β_h and
//     s_n·β_s for the class-specific transfer rates (Eq. 6).
//
// Reads and writes use the same formulas with the class parameters
// swapped in (Eqs. 7-8); SServer writes are slower than reads, reflecting
// flash garbage collection and wear leveling.
//
// The per-request quantities (m, n, s_m, s_n) come from the striping
// geometry in package layout. The paper derives them with the closed-form
// case analysis of its Figures 4-5; this implementation computes them
// exactly for all four cases (and the degenerate h=0 / s=0 layouts) from
// the same round-robin geometry, in O(M+N) per request.
package cost

import (
	"fmt"
	"math"

	"harl/internal/device"
	"harl/internal/layout"
)

// Params carries every Table I parameter. Times are in seconds and rates
// in seconds per byte, since the model is pure arithmetic (the simulator,
// not the model, owns the integer virtual clock).
type Params struct {
	// Architecture.
	M int // number of HServers
	N int // number of SServers

	// Network: unit data transfer time t (seconds per byte).
	NetUnit float64

	// HServer storage: startup uniform on [AlphaHMin, AlphaHMax], unit
	// transfer time BetaH. The paper uses one HServer profile for both
	// operations.
	AlphaHMin, AlphaHMax float64
	BetaH                float64

	// SServer storage, read path.
	AlphaSRMin, AlphaSRMax float64
	BetaSR                 float64

	// SServer storage, write path.
	AlphaSWMin, AlphaSWMax float64
	BetaSW                 float64

	// Replication factor for writes: every written byte is committed on
	// R replicas before the ack (primary/backup chain). 0 and 1 both
	// mean "no replication" and leave every formula untouched, so the
	// zero value models exactly the original paper. Reads are served by
	// one replica and never pay for R.
	R int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.M < 0 || p.N < 0 || p.M+p.N == 0:
		return fmt.Errorf("cost: invalid server counts M=%d N=%d", p.M, p.N)
	case p.NetUnit < 0:
		return fmt.Errorf("cost: negative network unit time")
	case p.AlphaHMin < 0 || p.AlphaHMax < p.AlphaHMin:
		return fmt.Errorf("cost: bad HServer startup range [%v,%v]", p.AlphaHMin, p.AlphaHMax)
	case p.AlphaSRMin < 0 || p.AlphaSRMax < p.AlphaSRMin:
		return fmt.Errorf("cost: bad SServer read startup range")
	case p.AlphaSWMin < 0 || p.AlphaSWMax < p.AlphaSWMin:
		return fmt.Errorf("cost: bad SServer write startup range")
	case p.BetaH < 0 || p.BetaSR < 0 || p.BetaSW < 0:
		return fmt.Errorf("cost: negative unit transfer time")
	case p.R < 0:
		return fmt.Errorf("cost: negative replication factor R=%d", p.R)
	case p.R > p.M+p.N:
		return fmt.Errorf("cost: replication factor R=%d exceeds cluster size %d", p.R, p.M+p.N)
	}
	return nil
}

// expectedMaxUniform returns E[max of m iid U(lo,hi) draws] =
// lo + m/(m+1)·(hi-lo), the order-statistics term of Eqs. (3)-(4).
// Zero servers contribute no startup.
func expectedMaxUniform(lo, hi float64, m int) float64 {
	if m <= 0 {
		return 0
	}
	k := float64(m)
	return lo + k/(k+1)*(hi-lo)
}

// Breakdown itemizes one request's modeled cost.
type Breakdown struct {
	Network  float64 // T_X
	Startup  float64 // T_S
	Transfer float64 // T_T
}

// Total returns T = T_X + T_S + T_T.
func (b Breakdown) Total() float64 { return b.Network + b.Startup + b.Transfer }

// RequestCost returns the modeled completion time (seconds) of one file
// request of the given size at the given offset under stripe sizes (h, s).
func (p Params) RequestCost(op device.Op, offset, size, h, s int64) float64 {
	return p.RequestBreakdown(op, offset, size, h, s).Total()
}

// RequestBreakdown is RequestCost with the three terms itemized.
func (p Params) RequestBreakdown(op device.Op, offset, size, h, s int64) Breakdown {
	if size <= 0 {
		return Breakdown{}
	}
	st := layout.Striping{M: p.M, N: p.N, H: h, S: s}
	if err := st.Validate(); err != nil {
		panic(err)
	}
	return p.distributionBreakdown(op, st.DistributeAnalytic(offset, size))
}

// distributionBreakdown applies Eqs. (1)-(6) to a computed sub-request
// distribution. It is the single arithmetic path shared by
// RequestBreakdown and Evaluator, so cached and uncached evaluations are
// bit-identical.
func (p Params) distributionBreakdown(op device.Op, d layout.Distribution) Breakdown {
	sm := float64(d.MaxH)
	sn := float64(d.MaxS)

	var b Breakdown
	// Eq. (1): network transfer of the largest sub-request on each class.
	b.Network = math.Max(sm, sn) * p.NetUnit

	// Replicated writes forward each primary's sub-request serially down
	// its chain over the primary's uplink (R-1 extra hops of the largest
	// sub-request), and the ack waits on startup draws across all R
	// stores of each touched slot.
	startupScale := 1
	if op == device.Write && p.R > 1 {
		b.Network += float64(p.R-1) * math.Max(sm, sn) * p.NetUnit
		startupScale = p.R
	}

	// Eqs. (2)-(5): expected maximum startup across the touched servers.
	var hStart, sStart float64
	hStart = expectedMaxUniform(p.AlphaHMin, p.AlphaHMax, d.MTouched*startupScale)
	if op == device.Read {
		sStart = expectedMaxUniform(p.AlphaSRMin, p.AlphaSRMax, d.NTouched)
	} else {
		sStart = expectedMaxUniform(p.AlphaSWMin, p.AlphaSWMax, d.NTouched*startupScale)
	}
	b.Startup = math.Max(hStart, sStart)

	// Eq. (6): storage transfer of the largest sub-request on each class.
	if op == device.Read {
		b.Transfer = math.Max(sm*p.BetaH, sn*p.BetaSR)
	} else {
		b.Transfer = math.Max(sm*p.BetaH, sn*p.BetaSW)
	}
	return b
}
