package cost

import (
	"math"
	"testing"
	"testing/quick"

	"harl/internal/device"
	"harl/internal/netsim"
	"harl/internal/sim"
)

func TestMultiValidate(t *testing.T) {
	good := MultiOf(testParams())
	if err := good.Validate(); err != nil {
		t.Fatalf("lifted params rejected: %v", err)
	}
	bad := []MultiParams{
		{},
		{NetUnit: -1, Tiers: good.Tiers},
		{Tiers: []TierParams{{Count: -1}}},
		{Tiers: []TierParams{{Count: 0}}}, // no servers at all
		{Tiers: []TierParams{{Count: 1, ReadAlphaMin: 5, ReadAlphaMax: 1}}},
		{Tiers: []TierParams{{Count: 1, WriteAlphaMax: -1, WriteAlphaMin: -2}}},
		{Tiers: []TierParams{{Count: 1, ReadBeta: -1}}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

// Property: the lifted two-tier model computes exactly the same cost as
// the original Params for arbitrary requests and stripe pairs.
func TestMultiOfEquivalenceProperty(t *testing.T) {
	p := testParams()
	p.M, p.N = 6, 2
	mp := MultiOf(p)
	prop := func(off32, size32 uint32, h8, s8 uint8, opBit bool) bool {
		h := int64(h8%64) * 4096
		s := int64(s8%64) * 4096
		if h == 0 && s == 0 {
			return true
		}
		op := device.Read
		if opBit {
			op = device.Write
		}
		off := int64(off32 % (8 << 20))
		size := int64(size32%(4<<20)) + 1
		a := p.RequestCost(op, off, size, h, s)
		b := mp.RequestCost(op, off, size, []int64{h, s})
		return math.Abs(a-b) < 1e-12*(a+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// threeTier builds a HDD + mid-SSD + fast-NVMe parameter set.
func threeTier() MultiParams {
	return MultiParams{
		NetUnit: 1.0 / (117 << 20),
		Tiers: []TierParams{
			{Name: "hdd", Count: 6,
				ReadAlphaMin: 3e-4, ReadAlphaMax: 7e-4, ReadBeta: 1.0 / (20 << 20),
				WriteAlphaMin: 3e-4, WriteAlphaMax: 7e-4, WriteBeta: 1.0 / (19 << 20)},
			{Name: "ssd", Count: 1,
				ReadAlphaMin: 2e-4, ReadAlphaMax: 4e-4, ReadBeta: 1.0 / (200 << 20),
				WriteAlphaMin: 2e-4, WriteAlphaMax: 4e-4, WriteBeta: 1.0 / (180 << 20)},
			{Name: "nvme", Count: 1,
				ReadAlphaMin: 5e-5, ReadAlphaMax: 1e-4, ReadBeta: 1.0 / (800 << 20),
				WriteAlphaMin: 5e-5, WriteAlphaMax: 1e-4, WriteBeta: 1.0 / (600 << 20)},
		},
	}
}

func TestMultiThreeTierOrdering(t *testing.T) {
	p := threeTier()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	const size = 512 << 10
	// Shifting a fixed per-tier spread toward the fast tiers must not
	// increase the cost of a full-round request.
	slowHeavy := p.RequestCost(device.Read, 0, size, []int64{64 << 10, 64 << 10, 64 << 10})
	fastHeavy := p.RequestCost(device.Read, 0, size, []int64{16 << 10, 128 << 10, 288 << 10})
	if fastHeavy >= slowHeavy {
		t.Fatalf("fast-shifted layout (%v) should beat uniform (%v)", fastHeavy, slowHeavy)
	}
}

func TestMultiRequestCostZeroAndPanics(t *testing.T) {
	p := threeTier()
	if p.RequestCost(device.Read, 0, 0, []int64{1, 1, 1}) != 0 {
		t.Fatal("zero-size request should be free")
	}
	mustPanicMulti(t, func() { p.RequestCost(device.Read, 0, 10, []int64{1, 1}) })
	mustPanicMulti(t, func() { p.RequestCost(device.Read, 0, 10, []int64{0, 0, 0}) })
}

func TestCalibrateTiers(t *testing.T) {
	profiles := []device.Profile{device.DefaultHDD(), device.DefaultSSD()}
	nvme := device.DefaultSSD()
	nvme.Name = "nvme"
	nvme.ReadRate = 800 << 20
	nvme.WriteRate = 600 << 20
	nvme.ReadStartupMin, nvme.ReadStartupMax = 50*sim.Microsecond, 100*sim.Microsecond
	profiles = append(profiles, nvme)

	p, err := CalibrateTiers(profiles, []int{6, 1, 1}, netsim.GigabitEthernet(), 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tiers) != 3 {
		t.Fatalf("tiers = %d", len(p.Tiers))
	}
	// The fitted betas must preserve the hardware speed ordering.
	if !(p.Tiers[0].ReadBeta > p.Tiers[1].ReadBeta && p.Tiers[1].ReadBeta > p.Tiers[2].ReadBeta) {
		t.Fatalf("beta ordering lost: %v / %v / %v",
			p.Tiers[0].ReadBeta, p.Tiers[1].ReadBeta, p.Tiers[2].ReadBeta)
	}
	if _, err := CalibrateTiers(nil, nil, netsim.GigabitEthernet(), 100, 1); err == nil {
		t.Fatal("empty profiles accepted")
	}
	if _, err := CalibrateTiers(profiles, []int{1}, netsim.GigabitEthernet(), 100, 1); err == nil {
		t.Fatal("mismatched counts accepted")
	}
}

func mustPanicMulti(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fn()
}
