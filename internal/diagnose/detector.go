// Package diagnose turns the obs sketch layer's windowed per-server
// summaries into named findings: which server degraded, when, and why.
// It is three stages glued to the virtual clock:
//
//   - a Detector that scores every server's windowed tail latency against
//     its tier-peer population with a robust MAD z-score and hysteresis
//     (FlagAfter/ClearAfter, mirroring the monitor's StaleAfter/
//     FreshAfter), producing straggler Episodes with onset times;
//   - a classifier (classify.go) that correlates each episode with the
//     faults fired-event log, replication catch-up/promotion counters,
//     monitor staleness and critical-path blame shares to label the root
//     cause with supporting evidence;
//   - a Report (report.go) that ranks the findings, renders the region ×
//     server skew heatmap as text, and drives `harlctl doctor`.
//
// Everything here observes — the detector consumes OnWindow callbacks the
// sketch layer fires from inside existing observations, so an attached
// diagnose pipeline leaves the simulated event sequence untouched.
package diagnose

import (
	"fmt"
	"sort"

	"harl/internal/obs"
	"harl/internal/sim"
)

// Config tunes the anomaly detector. The zero value gets defaults.
type Config struct {
	// FlagAfter confirms a straggler after this many consecutive outlier
	// windows; ClearAfter clears it after this many consecutive healthy
	// scored windows. Both default to 2 — the hysteresis pair that keeps
	// one noisy window from flapping a diagnosis, mirroring the monitor.
	FlagAfter  int
	ClearAfter int

	// MinOps is the fewest completed disk ops a server needs in a window
	// to be scored; sparser windows neither flag nor clear. Default 8.
	MinOps int64

	// ZThreshold is the robust z-score (0.6745·(x−median)/MAD over tier
	// peers) above which a server's windowed p99 is an outlier. Default
	// 3.5, the standard MAD outlier cut. Tiers with only two scored peers
	// cannot form a meaningful MAD; they fall back to the ratio test
	// alone.
	ZThreshold float64

	// RatioThreshold is the minimum p99/median ratio an outlier must
	// also exceed — a guard against statistically significant but
	// operationally irrelevant deviations in very tight populations.
	// Default 1.5.
	RatioThreshold float64

	// MADFloorFrac floors the MAD at this fraction of the median, so a
	// degenerate population (all peers identical) cannot produce infinite
	// z-scores. Default 0.05.
	MADFloorFrac float64
}

func (c Config) withDefaults() Config {
	if c.FlagAfter <= 0 {
		c.FlagAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	if c.MinOps <= 0 {
		c.MinOps = 8
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 3.5
	}
	if c.RatioThreshold <= 1 {
		c.RatioThreshold = 1.5
	}
	if c.MADFloorFrac <= 0 {
		c.MADFloorFrac = 0.05
	}
	return c
}

// Episode is one contiguous degradation on one server: flagged when
// FlagAfter consecutive windows scored as outliers, cleared when
// ClearAfter consecutive windows scored healthy. Times are virtual.
type Episode struct {
	Server   string
	Tier     string
	ServerID int

	// Onset is the start of the first flagged window — the detector's
	// estimate of when degradation began. Confirmed is the window
	// boundary at which the hysteresis threshold was crossed, so
	// Confirmed − Onset is the detection latency (FlagAfter windows).
	Onset     sim.Time
	Confirmed sim.Time

	// Cleared is the boundary the episode ended at; zero while active.
	Cleared sim.Time

	// PeakZ and PeakRatio are the worst scores seen while flagged;
	// PeakUtil is the server's highest windowed utilization in the
	// episode and PeerUtil the tier-median utilization in that window.
	PeakZ     float64
	PeakRatio float64
	PeakUtil  float64
	PeerUtil  float64

	// Windows counts the outlier windows in the episode.
	Windows int
}

// Active reports whether the episode was still open at Finish time.
func (ep *Episode) Active() bool { return ep.Cleared == 0 }

// serverState carries one server's hysteresis streaks.
type serverState struct {
	flagStreak  int
	clearStreak int
	// pendingOnset is the start of the current outlier streak — promoted
	// to Episode.Onset when the streak reaches FlagAfter.
	pendingOnset sim.Time
	episode      *Episode // open episode, nil when healthy
}

// Detector scores sketch windows into Episodes. Bind it to a SketchSet
// before traffic; read Episodes after Finish.
type Detector struct {
	cfg     Config
	ss      *obs.SketchSet
	states  []serverState
	eps     []*Episode
	windows int
}

// NewDetector builds a detector and binds it to the sketch set's
// OnWindow feed. The sketch set must outlive the detector's run.
func NewDetector(ss *obs.SketchSet, cfg Config) *Detector {
	if ss == nil {
		panic("diagnose: detector needs a sketch set")
	}
	d := &Detector{cfg: cfg.withDefaults(), ss: ss}
	ss.OnWindow(d.observe)
	return d
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Window returns the bound sketch window.
func (d *Detector) Window() sim.Duration { return d.ss.Window() }

// Windows returns how many windows the detector has scored.
func (d *Detector) Windows() int { return d.windows }

// observe is the OnWindow sink: group by tier, score, update streaks.
func (d *Detector) observe(end sim.Time, window sim.Duration, servers []obs.ServerWindow) {
	if len(d.states) < len(servers) {
		d.states = append(d.states, make([]serverState, len(servers)-len(d.states))...)
	}
	d.windows++

	byTier := make(map[string][]int)
	for i, w := range servers {
		if w.Ops >= d.cfg.MinOps {
			byTier[w.Tier] = append(byTier[w.Tier], i)
		}
	}
	for _, peers := range byTier {
		if len(peers) < 2 {
			continue // nothing to compare against
		}
		p99s := make([]float64, len(peers))
		utils := make([]float64, len(peers))
		for j, i := range peers {
			p99s[j] = servers[i].P99
			utils[j] = servers[i].Util
		}
		med := median(p99s)
		utilMed := median(utils)
		mad := medianAbsDev(p99s, med)
		floor := d.cfg.MADFloorFrac * med
		if mad < floor {
			mad = floor
		}
		for j, i := range peers {
			x := p99s[j]
			var z, ratio float64
			if med > 0 {
				ratio = x / med
			}
			if mad > 0 {
				z = 0.6745 * (x - med) / mad
			}
			outlier := ratio >= d.cfg.RatioThreshold
			if len(peers) >= 3 {
				// A real population: demand statistical significance too.
				outlier = outlier && z >= d.cfg.ZThreshold
			}
			d.score(i, servers[i], end, window, outlier, z, ratio, utilMed)
		}
	}
}

// score applies the hysteresis to one scored server-window.
func (d *Detector) score(i int, w obs.ServerWindow, end sim.Time, window sim.Duration, outlier bool, z, ratio, utilMed float64) {
	st := &d.states[i]
	if outlier {
		if st.flagStreak == 0 {
			st.pendingOnset = end.Add(-window)
		}
		st.flagStreak++
		st.clearStreak = 0
		ep := st.episode
		if ep == nil && st.flagStreak >= d.cfg.FlagAfter {
			ep = &Episode{
				Server:    w.Server,
				Tier:      w.Tier,
				ServerID:  i,
				Onset:     st.pendingOnset,
				Confirmed: end,
				Windows:   st.flagStreak,
			}
			st.episode = ep
			d.eps = append(d.eps, ep)
		}
		if ep != nil {
			if st.flagStreak > ep.Windows {
				ep.Windows = st.flagStreak
			}
			if z > ep.PeakZ {
				ep.PeakZ = z
			}
			if ratio > ep.PeakRatio {
				ep.PeakRatio = ratio
			}
			if w.Util > ep.PeakUtil {
				ep.PeakUtil = w.Util
				ep.PeerUtil = utilMed
			}
		}
		return
	}
	st.flagStreak = 0
	if st.episode != nil {
		st.clearStreak++
		if st.clearStreak >= d.cfg.ClearAfter {
			st.episode.Cleared = end
			st.episode = nil
			st.clearStreak = 0
		}
	}
}

// Finish flushes the sketch windows up to now. Episodes still open stay
// Active — a straggler that never recovered is still a straggler.
func (d *Detector) Finish() {
	d.ss.Flush()
}

// Episodes returns every confirmed episode in confirmation order.
func (d *Detector) Episodes() []Episode {
	out := make([]Episode, len(d.eps))
	for i, ep := range d.eps {
		out[i] = *ep
	}
	return out
}

// median returns the middle of xs (mean of the middle two when even);
// xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// medianAbsDev returns the median absolute deviation from med.
func medianAbsDev(xs []float64, med float64) float64 {
	devs := make([]float64, len(xs))
	for i, x := range xs {
		d := x - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	return median(devs)
}

// describe renders an episode for reports.
func (ep *Episode) describe() string {
	state := "active"
	if !ep.Active() {
		state = fmt.Sprintf("cleared %v", ep.Cleared)
	}
	return fmt.Sprintf("%s (%s): onset %v, confirmed %v, %s; peak p99 %.1f× tier median (z=%.1f), util %.2f vs peer %.2f over %d window(s)",
		ep.Server, ep.Tier, ep.Onset, ep.Confirmed, state, ep.PeakRatio, ep.PeakZ, ep.PeakUtil, ep.PeerUtil, ep.Windows)
}
