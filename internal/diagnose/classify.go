package diagnose

import (
	"fmt"
	"sort"

	"harl/internal/faults"
	"harl/internal/obs"
	"harl/internal/sim"
)

// Cause labels a finding's root cause.
type Cause string

// Root-cause labels, ordered roughly by how actionable they are.
const (
	// CauseStraggle: an injected (or hardware) service-time slowdown on
	// the server — the faults log shows a straggle bout overlapping the
	// episode.
	CauseStraggle Cause = "straggle"
	// CauseCrashRecovery: the episode overlaps a crash/recover pair —
	// the latency spike is the recovery (and any replication catch-up),
	// not a degraded disk.
	CauseCrashRecovery Cause = "crash-recovery"
	// CauseFlaky: overlapping transient-error/drop bout; tail latency
	// comes from retries and timeouts.
	CauseFlaky Cause = "flaky"
	// CauseLoadSkew: no fault on the server, but the skew heatmap shows
	// it carrying a disproportionate byte share — the layout, not the
	// hardware, is the problem.
	CauseLoadSkew Cause = "load-skew"
	// CausePlanDrift: no fault and no skew, but the workload monitor
	// reports stale regions — the layout plan no longer matches the
	// workload, and the slow server is collateral.
	CausePlanDrift Cause = "plan-drift"
	// CauseUnknown: nothing correlates.
	CauseUnknown Cause = "unknown"
)

// Correlates carries the side channels the classifier mines for
// evidence. Every field is optional; absent channels simply cannot
// contribute evidence.
type Correlates struct {
	// Faults is the fired-event log of the run's fault schedule.
	Faults *faults.Log

	// CatchUps and Promotions are the replication counters at end of
	// run — evidence that a crash-recovery episode included log
	// catch-up/view-change work.
	CatchUps   int
	Promotions int

	// StaleRegions lists regions the workload monitor held stale.
	StaleRegions []int

	// BlameShare maps server name → its share of the critical path
	// (disk + queue time), from the critpath blame table.
	BlameShare map[string]float64

	// SkewFactor is the byte-share multiple over the per-server mean at
	// which the heatmap row counts as load skew; 0 means 2.
	SkewFactor float64
}

// Finding is one classified episode.
type Finding struct {
	Episode
	Cause    Cause
	Evidence []string
	// Severity ranks findings: peak ratio weighted by episode length.
	Severity float64
}

// classify labels one episode against the correlates and heatmap.
func classify(ep Episode, cor Correlates, heat *obs.Heatmap, window sim.Duration) Finding {
	f := Finding{Episode: ep, Cause: CauseUnknown}
	f.Severity = ep.PeakRatio * float64(ep.Windows)

	// The correlation interval: one window before onset (the fault fired
	// before its effect crossed a boundary) through clearance or, for
	// active episodes, the end of time.
	from := sim.Duration(ep.Onset.Add(-window).Sub(sim.Time(0)))
	if from < 0 {
		from = 0
	}
	to := sim.Duration(1<<62 - 1)
	if !ep.Active() {
		to = sim.Duration(ep.Cleared.Sub(sim.Time(0)))
	}

	var straggle, crash, flaky []faults.Fired
	if cor.Faults != nil {
		for _, ev := range cor.Faults.ServerEventsIn(ep.ServerID, from, to) {
			switch ev.Kind {
			case faults.Straggle, faults.Unstraggle:
				straggle = append(straggle, ev)
			case faults.Crash, faults.Recover:
				crash = append(crash, ev)
			case faults.Flaky, faults.Clear:
				flaky = append(flaky, ev)
			}
		}
	}
	evFault := func(evs []faults.Fired) {
		for _, ev := range evs {
			f.Evidence = append(f.Evidence, "fault log: "+ev.String())
		}
	}
	switch {
	case len(straggle) > 0:
		f.Cause = CauseStraggle
		evFault(straggle)
	case len(crash) > 0:
		f.Cause = CauseCrashRecovery
		evFault(crash)
		if cor.CatchUps > 0 || cor.Promotions > 0 {
			f.Evidence = append(f.Evidence, fmt.Sprintf(
				"repl: %d promotion(s), %d catch-up session(s) this run", cor.Promotions, cor.CatchUps))
		}
	case len(flaky) > 0:
		f.Cause = CauseFlaky
		evFault(flaky)
	default:
		if ok, detail := skewEvidence(ep.ServerID, heat, cor.SkewFactor); ok {
			f.Cause = CauseLoadSkew
			f.Evidence = append(f.Evidence, detail)
		} else if len(cor.StaleRegions) > 0 {
			f.Cause = CausePlanDrift
			f.Evidence = append(f.Evidence, fmt.Sprintf("monitor: stale regions %v", cor.StaleRegions))
		}
	}
	if share, ok := cor.BlameShare[ep.Server]; ok && share > 0 {
		f.Evidence = append(f.Evidence, fmt.Sprintf(
			"critpath: %s carries %.0f%% of critical-path device time", ep.Server, share*100))
	}
	return f
}

// skewEvidence checks whether the heatmap row for server id carries a
// disproportionate byte share.
func skewEvidence(id int, heat *obs.Heatmap, factor float64) (bool, string) {
	if heat == nil || len(heat.Cells) == 0 {
		return false, ""
	}
	if factor <= 0 {
		factor = 2
	}
	total := heat.TotalBytes()
	if total == 0 {
		return false, ""
	}
	mean := float64(total) / float64(len(heat.Cells))
	mine := float64(heat.ServerBytes(id))
	if mine < factor*mean {
		return false, ""
	}
	// Name the hottest region on the row for the report.
	hot, hotBytes := -1, int64(0)
	for r, c := range heat.Cells[id] {
		if c.Bytes > hotBytes {
			hot, hotBytes = r, c.Bytes
		}
	}
	return true, fmt.Sprintf(
		"heatmap: %s carries %.0f%% of all bytes (%.1f× per-server mean), hottest region r%d with %d B",
		heat.Servers[id].Name, 100*mine/float64(total), mine/mean, hot, hotBytes)
}

// rank orders findings most-severe first, deterministically.
func rank(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		return fs[i].Onset < fs[j].Onset
	})
}
