package diagnose

import (
	"fmt"
	"strings"

	"harl/internal/obs"
	"harl/internal/sim"
)

// Report is the diagnosis: ranked findings plus the skew heatmap.
type Report struct {
	Window   sim.Duration
	Windows  int
	Findings []Finding
	Heatmap  *obs.Heatmap
	Net      []obs.NetStat
}

// Diagnose finishes the detector, classifies every episode against the
// correlates, and returns the ranked report.
func (d *Detector) Diagnose(cor Correlates) *Report {
	d.Finish()
	heat := d.ss.Heatmap()
	r := &Report{
		Window:  d.Window(),
		Windows: d.Windows(),
		Heatmap: heat,
		Net:     d.ss.NetStats(),
	}
	for _, ep := range d.Episodes() {
		r.Findings = append(r.Findings, classify(ep, cor, heat, d.Window()))
	}
	rank(r.Findings)
	return r
}

// Clean reports a run with no findings.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Confirmed returns the findings with the given cause.
func (r *Report) Confirmed(cause Cause) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Cause == cause {
			out = append(out, f)
		}
	}
	return out
}

// Render writes the ranked diagnosis as text — the body of `harlctl
// doctor` and of the telemetry bundle's doctor.txt.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "doctor: %d finding(s) over %d windows of %v\n", len(r.Findings), r.Windows, r.Window)
	if r.Clean() {
		b.WriteString("no anomalies: every server tracked its tier peers\n")
	}
	for i, f := range r.Findings {
		fmt.Fprintf(&b, "%d. [%s] %s\n", i+1, f.Cause, f.describe())
		for _, ev := range f.Evidence {
			fmt.Fprintf(&b, "   evidence: %s\n", ev)
		}
	}
	if r.Heatmap != nil {
		b.WriteString("\nskew heatmap (bytes, server x region):\n")
		b.WriteString(renderHeatmap(r.Heatmap))
	}
	return b.String()
}

// renderHeatmap draws the region × server byte matrix: one row per
// server, one column per region, each cell the percentage of all bytes.
func renderHeatmap(h *obs.Heatmap) string {
	var b strings.Builder
	total := h.TotalBytes()
	if total == 0 {
		return "  (no attributed traffic)\n"
	}
	b.WriteString("        ")
	for r := 0; r < h.Regions; r++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("r%d", r))
	}
	b.WriteString("     row\n")
	for i, info := range h.Servers {
		fmt.Fprintf(&b, "  %-6s", info.Name)
		var row int64
		for r := 0; r < h.Regions; r++ {
			c := h.Cells[i][r]
			row += c.Bytes
			if c.Bytes == 0 {
				b.WriteString("       .")
			} else {
				fmt.Fprintf(&b, "%7.1f%%", 100*float64(c.Bytes)/float64(total))
			}
		}
		fmt.Fprintf(&b, "%7.1f%%\n", 100*float64(row)/float64(total))
	}
	return b.String()
}
