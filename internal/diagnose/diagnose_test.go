package diagnose

import (
	"strings"
	"testing"

	"harl/internal/device"
	"harl/internal/faults"
	"harl/internal/netsim"
	"harl/internal/obs"
	"harl/internal/pfs"
	"harl/internal/sim"
)

const win = 10 * sim.Millisecond

// feed builds a sketch set with six hdd peers and two ssd peers and a
// detector over it, returning both plus the engine.
func feed(t *testing.T, cfg Config) (*sim.Engine, *obs.SketchSet, *Detector) {
	t.Helper()
	e := sim.NewEngine(1)
	ss := obs.NewSketchSet(e, obs.SketchConfig{Window: win})
	for i := 0; i < 6; i++ {
		ss.AddServer([]string{"h0", "h1", "h2", "h3", "h4", "h5"}[i], "hdd")
	}
	ss.AddServer("s6", "ssd")
	ss.AddServer("s7", "ssd")
	return e, ss, NewDetector(ss, cfg)
}

// window schedules 16 ops on every server inside window w, with server
// "slow" served at factor× the base latency.
func window(e *sim.Engine, ss *obs.SketchSet, w int, slow int, factor float64) {
	at := sim.Duration(w)*win + sim.Millisecond
	e.Schedule(at, func() {
		for id := 0; id < 8; id++ {
			base := sim.Millisecond
			if id >= 6 {
				base = 100 * sim.Microsecond // ssd tier is just faster
			}
			lat := base
			if id == slow {
				lat = sim.Duration(float64(base) * factor)
			}
			for k := 0; k < 16; k++ {
				ss.ObserveDisk(id, true, 0, lat, 4096)
			}
		}
	})
}

func TestDetectorFlagsConfirmsAndClears(t *testing.T) {
	e, ss, d := feed(t, Config{})

	// Windows 0-1 healthy, 2-5 h1 six-times slow, 6-9 healthy again.
	for w := 0; w < 10; w++ {
		slow := -1
		if w >= 2 && w <= 5 {
			slow = 1
		}
		window(e, ss, w, slow, 6)
	}
	e.Run()
	d.Finish()

	eps := d.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes %+v, want exactly 1", eps)
	}
	ep := eps[0]
	if ep.Server != "h1" || ep.Tier != "hdd" || ep.ServerID != 1 {
		t.Fatalf("flagged %s/%s id %d", ep.Server, ep.Tier, ep.ServerID)
	}
	// First outlier window is window 2 → onset = its start = 20ms;
	// confirmation after FlagAfter=2 windows → end of window 3 = 40ms.
	if ep.Onset != sim.Time(20*sim.Millisecond) {
		t.Fatalf("onset %v, want 20ms", ep.Onset)
	}
	if ep.Confirmed != sim.Time(40*sim.Millisecond) {
		t.Fatalf("confirmed %v, want 40ms", ep.Confirmed)
	}
	// Healthy again from window 6; cleared after ClearAfter=2 scored
	// healthy windows → end of window 7 = 80ms.
	if ep.Active() || ep.Cleared != sim.Time(80*sim.Millisecond) {
		t.Fatalf("cleared %v active=%v, want 80ms", ep.Cleared, ep.Active())
	}
	if ep.PeakRatio < 3 || ep.Windows != 4 {
		t.Fatalf("peak ratio %v windows %d", ep.PeakRatio, ep.Windows)
	}
}

func TestDetectorHysteresisIgnoresOneOff(t *testing.T) {
	e, ss, d := feed(t, Config{})
	// A single outlier window must not confirm (FlagAfter 2).
	for w := 0; w < 5; w++ {
		slow := -1
		if w == 2 {
			slow = 3
		}
		window(e, ss, w, slow, 8)
	}
	e.Run()
	d.Finish()
	if eps := d.Episodes(); len(eps) != 0 {
		t.Fatalf("one-off window confirmed an episode: %+v", eps)
	}
}

func TestDetectorTwoPeerTierRatioFallback(t *testing.T) {
	e, ss, d := feed(t, Config{})
	// Straggle s6 (ssd tier, only two peers — MAD is meaningless there,
	// the ratio fallback must still catch a 6x slowdown).
	for w := 0; w < 4; w++ {
		window(e, ss, w, 6, 6)
	}
	e.Run()
	d.Finish()
	eps := d.Episodes()
	if len(eps) != 1 || eps[0].Server != "s6" || eps[0].Tier != "ssd" {
		t.Fatalf("episodes %+v, want s6/ssd", eps)
	}
}

func TestDetectorSparseWindowsDontScore(t *testing.T) {
	e, ss, d := feed(t, Config{MinOps: 32})
	// 16 ops per window is below MinOps: nothing is ever scored.
	for w := 0; w < 6; w++ {
		window(e, ss, w, 1, 10)
	}
	e.Run()
	d.Finish()
	if eps := d.Episodes(); len(eps) != 0 {
		t.Fatalf("sparse windows scored: %+v", eps)
	}
}

// faultLog applies a schedule against a real file system so the log
// carries properly fired events.
func faultLog(t *testing.T, s faults.Schedule) *faults.Log {
	t.Helper()
	e := sim.NewEngine(1)
	net := netsim.MustNew(e, netsim.GigabitEthernet())
	profiles := make([]device.Profile, 0, 8)
	for i := 0; i < 6; i++ {
		profiles = append(profiles, device.DefaultHDD())
	}
	for i := 0; i < 2; i++ {
		profiles = append(profiles, device.DefaultSSD())
	}
	fs := pfs.MustNew(e, net, profiles)
	log := s.Apply(e, fs)
	e.Run()
	return log
}

func TestClassifyStraggleBeatsOtherCauses(t *testing.T) {
	e, ss, d := feed(t, Config{})
	for w := 0; w < 6; w++ {
		slow := -1
		if w >= 2 {
			slow = 1
		}
		window(e, ss, w, slow, 6)
	}
	e.Run()

	log := faultLog(t, faults.Schedule{
		{At: 21 * sim.Millisecond, Kind: faults.Straggle, Server: 1, Factor: 6},
		{At: 25 * sim.Millisecond, Kind: faults.Crash, Server: 1},
		{At: 30 * sim.Millisecond, Kind: faults.Recover, Server: 1},
	})
	r := d.Diagnose(Correlates{Faults: log, BlameShare: map[string]float64{"h1": 0.4}})
	if r.Clean() || len(r.Findings) != 1 {
		t.Fatalf("findings %+v", r.Findings)
	}
	f := r.Findings[0]
	if f.Cause != CauseStraggle {
		t.Fatalf("cause %s, want straggle", f.Cause)
	}
	var sawFault, sawBlame bool
	for _, ev := range f.Evidence {
		if strings.Contains(ev, "straggle s1") {
			sawFault = true
		}
		if strings.Contains(ev, "critpath") && strings.Contains(ev, "40%") {
			sawBlame = true
		}
	}
	if !sawFault || !sawBlame {
		t.Fatalf("evidence %v", f.Evidence)
	}
}

func TestClassifyCrashRecoveryAndFlaky(t *testing.T) {
	mk := func(s faults.Schedule, cor Correlates) Finding {
		e, ss, d := feed(t, Config{})
		for w := 0; w < 6; w++ {
			slow := -1
			if w >= 2 {
				slow = 2
			}
			window(e, ss, w, slow, 6)
		}
		e.Run()
		cor.Faults = faultLog(t, s)
		r := d.Diagnose(cor)
		if len(r.Findings) != 1 {
			t.Fatalf("findings %+v", r.Findings)
		}
		return r.Findings[0]
	}

	f := mk(faults.Schedule{
		{At: 22 * sim.Millisecond, Kind: faults.Crash, Server: 2},
		{At: 40 * sim.Millisecond, Kind: faults.Recover, Server: 2},
	}, Correlates{CatchUps: 3, Promotions: 1})
	if f.Cause != CauseCrashRecovery {
		t.Fatalf("cause %s, want crash-recovery", f.Cause)
	}
	if !strings.Contains(strings.Join(f.Evidence, "\n"), "catch-up") {
		t.Fatalf("no repl evidence: %v", f.Evidence)
	}

	f = mk(faults.Schedule{
		{At: 22 * sim.Millisecond, Kind: faults.Flaky, Server: 2, ErrP: 0.2, DropP: 0.1},
		{At: 50 * sim.Millisecond, Kind: faults.Clear, Server: 2},
	}, Correlates{})
	if f.Cause != CauseFlaky {
		t.Fatalf("cause %s, want flaky", f.Cause)
	}
}

func TestClassifyLoadSkewAndPlanDrift(t *testing.T) {
	// No faults; h1 slow AND carrying most of the bytes → load skew.
	e, ss, d := feed(t, Config{})
	for w := 0; w < 6; w++ {
		slow := -1
		if w >= 2 {
			slow = 1
		}
		window(e, ss, w, slow, 6)
	}
	e.Schedule(sim.Millisecond, func() {
		ss.ObserveRegion(0, 1, 1<<20, sim.Millisecond)
		ss.ObserveRegion(1, 0, 4096, sim.Millisecond)
	})
	e.Run()
	r := d.Diagnose(Correlates{})
	if len(r.Findings) != 1 || r.Findings[0].Cause != CauseLoadSkew {
		t.Fatalf("findings %+v, want load-skew", r.Findings)
	}
	if !strings.Contains(r.Findings[0].Evidence[0], "heatmap") {
		t.Fatalf("evidence %v", r.Findings[0].Evidence)
	}

	// Same latencies, no heatmap skew, monitor staleness → plan drift.
	e2, ss2, d2 := feed(t, Config{})
	for w := 0; w < 6; w++ {
		slow := -1
		if w >= 2 {
			slow = 1
		}
		window(e2, ss2, w, slow, 6)
	}
	e2.Run()
	r2 := d2.Diagnose(Correlates{StaleRegions: []int{2, 5}})
	if len(r2.Findings) != 1 || r2.Findings[0].Cause != CausePlanDrift {
		t.Fatalf("findings %+v, want plan-drift", r2.Findings)
	}

	// Nothing correlates at all → unknown.
	e3, ss3, d3 := feed(t, Config{})
	for w := 0; w < 6; w++ {
		slow := -1
		if w >= 2 {
			slow = 1
		}
		window(e3, ss3, w, slow, 6)
	}
	e3.Run()
	r3 := d3.Diagnose(Correlates{})
	if len(r3.Findings) != 1 || r3.Findings[0].Cause != CauseUnknown {
		t.Fatalf("findings %+v, want unknown", r3.Findings)
	}
}

func TestReportRenderAndClean(t *testing.T) {
	e, ss, d := feed(t, Config{})
	for w := 0; w < 6; w++ {
		slow := -1
		if w >= 2 {
			slow = 1
		}
		window(e, ss, w, slow, 6)
	}
	e.Schedule(sim.Millisecond, func() {
		ss.ObserveRegion(0, 1, 1<<20, sim.Millisecond)
		ss.ObserveRegion(1, 0, 4096, sim.Millisecond)
	})
	e.Run()
	log := faultLog(t, faults.Schedule{
		{At: 21 * sim.Millisecond, Kind: faults.Straggle, Server: 1, Factor: 6},
	})
	out := d.Diagnose(Correlates{Faults: log}).Render()
	for _, want := range []string{"doctor: 1 finding(s)", "[straggle] h1 (hdd)", "evidence: fault log", "skew heatmap", "h1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// A clean run renders clean.
	e2, ss2, d2 := feed(t, Config{})
	for w := 0; w < 6; w++ {
		window(e2, ss2, w, -1, 1)
	}
	e2.Run()
	r2 := d2.Diagnose(Correlates{})
	if !r2.Clean() {
		t.Fatalf("clean run has findings: %+v", r2.Findings)
	}
	if !strings.Contains(r2.Render(), "no anomalies") {
		t.Fatalf("clean render:\n%s", r2.Render())
	}
}

func TestDetectorDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		e, ss, d := feed(t, Config{})
		for w := 0; w < 8; w++ {
			slow := -1
			if w >= 3 && w <= 5 {
				slow = 4
			}
			window(e, ss, w, slow, 5)
		}
		e.Run()
		return d.Diagnose(Correlates{}).Render()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("reports diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
