package layout

import (
	"testing"
	"testing/quick"
)

func TestTieredValidate(t *testing.T) {
	good := Tiered{Counts: []int{6, 1, 1}, Stripes: []int64{16 << 10, 64 << 10, 256 << 10}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Tiered{
		{},
		{Counts: []int{1}, Stripes: []int64{1, 2}},
		{Counts: []int{-1, 2}, Stripes: []int64{1, 2}},
		{Counts: []int{1, 2}, Stripes: []int64{1, -2}},
		{Counts: []int{0, 0}, Stripes: []int64{1, 2}},
		{Counts: []int{2, 2}, Stripes: []int64{0, 0}},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted: %v", i, cfg)
		}
	}
}

func TestTieredOfMatchesStriping(t *testing.T) {
	st := Striping{M: 6, N: 2, H: 16 << 10, S: 128 << 10}
	tt := TieredOf(st)
	if tt.Validate() != nil || tt.Servers() != 8 || tt.RoundSize() != st.RoundSize() {
		t.Fatalf("conversion broken: %+v", tt)
	}
	// Locate agrees everywhere.
	for _, off := range []int64{0, 1, 16<<10 - 1, 16 << 10, 96 << 10, 96<<10 + 1, 300 << 10, 352 << 10, 1 << 20} {
		s1, l1 := st.Locate(off)
		s2, l2 := tt.Locate(off)
		if s1 != s2 || l1 != l2 {
			t.Fatalf("Locate(%d): striping (%d,%d) vs tiered (%d,%d)", off, s1, l1, s2, l2)
		}
	}
}

// Property: the two-tier special case of Tiered agrees with Striping on
// Map and Distribute for arbitrary configurations.
func TestTieredTwoTierEquivalenceProperty(t *testing.T) {
	prop := func(m8, n8 uint8, h16, s16 uint16, off32, size32 uint32) bool {
		st := Striping{
			M: int(m8%6) + 1,
			N: int(n8 % 4),
			H: int64(h16%32) * 4096,
			S: int64(s16%32) * 4096,
		}
		if st.Validate() != nil {
			return true
		}
		tt := TieredOf(st)
		off := int64(off32 % (4 << 20))
		size := int64(size32 % (2 << 20))

		subs1 := st.Map(off, size)
		subs2 := tt.Map(off, size)
		if len(subs1) != len(subs2) {
			return false
		}
		for i := range subs1 {
			if subs1[i] != subs2[i] {
				return false
			}
		}
		d1 := st.DistributeAnalytic(off, size)
		d2 := tt.Distribute(off, size)
		return d2.Touched[0] == d1.MTouched && d2.Touched[1] == d1.NTouched &&
			d2.Max[0] == d1.MaxH && d2.Max[1] == d1.MaxS
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTieredThreeTierByHand(t *testing.T) {
	// 2 + 1 + 1 servers with stripes 10/20/40: round = 2*10+20+40 = 80.
	tt := Tiered{Counts: []int{2, 1, 1}, Stripes: []int64{10, 20, 40}}
	checks := []struct {
		off    int64
		server int
		local  int64
	}{
		{0, 0, 0}, {10, 1, 0}, {20, 2, 0}, {39, 2, 19}, {40, 3, 0}, {79, 3, 39},
		{80, 0, 10}, {100, 2, 20}, {120, 3, 40},
	}
	for _, c := range checks {
		srv, local := tt.Locate(c.off)
		if srv != c.server || local != c.local {
			t.Errorf("Locate(%d) = (%d,%d), want (%d,%d)", c.off, srv, local, c.server, c.local)
		}
	}
	// A full round from 0 touches every server with its full stripe.
	d := tt.Distribute(0, 80)
	if d.Touched[0] != 2 || d.Touched[1] != 1 || d.Touched[2] != 1 {
		t.Fatalf("touched = %v", d.Touched)
	}
	if d.Max[0] != 10 || d.Max[1] != 20 || d.Max[2] != 40 {
		t.Fatalf("max = %v", d.Max)
	}
}

func TestTieredSkipsZeroStripeTiers(t *testing.T) {
	tt := Tiered{Counts: []int{2, 1, 1}, Stripes: []int64{0, 20, 40}}
	for _, sub := range tt.Map(0, 200) {
		if tt.TierOf(sub.Server) == 0 {
			t.Fatalf("data landed on zero-stripe tier: %+v", sub)
		}
	}
	d := tt.Distribute(0, 200)
	if d.Touched[0] != 0 || d.Max[0] != 0 {
		t.Fatalf("zero-stripe tier touched: %+v", d)
	}
}

// Property: Map conserves bytes over three-tier configurations and the
// byte-level oracle agrees on server placement.
func TestTieredMapConservationProperty(t *testing.T) {
	prop := func(seed int64, off32, size32 uint32) bool {
		tt := Tiered{
			Counts:  []int{1 + int(seed&3), 1, 1 + int((seed>>2)&1)},
			Stripes: []int64{4096 * (1 + seed&7), 8192, 4096 * (1 + (seed>>3)&7)},
		}
		if tt.Validate() != nil {
			return true
		}
		off := int64(off32 % (1 << 20))
		size := int64(size32%(1<<20)) + 1
		var total int64
		seen := make(map[int]bool)
		for _, sub := range tt.Map(off, size) {
			if seen[sub.Server] || sub.Size <= 0 {
				return false
			}
			seen[sub.Server] = true
			total += sub.Size
		}
		return total == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTieredPanics(t *testing.T) {
	tt := Tiered{Counts: []int{2, 2}, Stripes: []int64{10, 20}}
	mustPanic(t, func() { tt.Locate(-1) })
	mustPanic(t, func() { tt.Map(-1, 5) })
	mustPanic(t, func() { tt.Distribute(0, -1) })
	mustPanic(t, func() { tt.TierOf(99) })
	mustPanic(t, func() { tt.TierOf(-1) })
	mustPanic(t, func() { (Tiered{Counts: []int{1}, Stripes: []int64{0}}).Map(0, 5) })
}

func TestTieredString(t *testing.T) {
	tt := Tiered{Counts: []int{6, 1, 1}, Stripes: []int64{16 << 10, 64 << 10, 256 << 10}}
	if got := tt.String(); got != "[6x16K 1x64K 1x256K]" {
		t.Fatalf("String = %q", got)
	}
}
