package layout

import "fmt"

// Closed-form critical parameters, paper Fig. 5.
//
// Section III-D derives the cost model's per-request quantities
// (m, n, s_m, s_n) analytically, case-split on where the request begins
// and ends (Fig. 4); Fig. 5 tabulates case (a), where both boundary
// sub-requests fall on HServers. This file carries that published
// derivation — with its boundary conditions worked out in full — and the
// tests cross-check it against the exact geometric computation
// (DistributeAnalytic) by exhaustive enumeration.
//
// Derivation sketch (case (a), request [o, o+r), round size R = M*h+N*s):
// with r_b/r_e the first/last byte's round indices, n_b/n_e their HServer
// columns, s_b the bytes from the first byte to its stripe's end and s_e
// the bytes from its stripe's start to the last byte, an HServer column c
// accumulates (Δr-1)·h from whole middle rounds plus a first-round term
// f(c) ∈ {0, s_b, h} and a last-round term g(c) ∈ {h, s_e, 0}; maximizing
// f+g over the touched columns gives s_m, and counting columns with
// positive coverage gives m. SServer columns are covered only by whole
// rounds in case (a), so s_n = Δr·s over all N SServers (or none when the
// request stays inside one round's H zone). The published table agrees
// with this everywhere except transcription slips in its fragment-size
// row (it mixes l_e into the l_b arm); the tests pin the corrected forms.

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CaseKind labels the four begin/end placements of Fig. 4.
type CaseKind int

// The four cases of Fig. 4.
const (
	CaseA CaseKind = iota // begins on HServer, ends on HServer
	CaseB                 // begins on HServer, ends on SServer
	CaseC                 // begins on SServer, ends on HServer
	CaseD                 // begins on SServer, ends on SServer
)

// String names the case as the paper letters it.
func (c CaseKind) String() string { return string(rune('a' + int(c))) }

// CaseOf classifies a request by where its first and last bytes land.
func (st Striping) CaseOf(off, size int64) CaseKind {
	if size <= 0 {
		panic(fmt.Sprintf("layout: CaseOf of empty request %d+%d", off, size))
	}
	beginSrv, _ := st.Locate(off)
	endSrv, _ := st.Locate(off + size - 1)
	beginsH := st.IsHServer(beginSrv)
	endsH := st.IsHServer(endSrv)
	switch {
	case beginsH && endsH:
		return CaseA
	case beginsH && !endsH:
		return CaseB
	case !beginsH && endsH:
		return CaseC
	default:
		return CaseD
	}
}

// DistributeCaseA computes (m, n, s_m, s_n) via the closed-form analysis
// of the paper's Fig. 5. It is defined only for case (a) requests — both
// boundary sub-requests on HServers — with M, h > 0; other inputs panic.
// DistributeAnalytic covers every case in O(M+N); this function exists as
// the paper's published O(1) derivation and is verified equal to it.
func (st Striping) DistributeCaseA(off, size int64) Distribution {
	if st.M <= 0 || st.H <= 0 {
		panic(fmt.Sprintf("layout: DistributeCaseA needs M>0, h>0, got %v", st))
	}
	if st.CaseOf(off, size) != CaseA {
		panic(fmt.Sprintf("layout: request %d+%d is case %v, not (a)", off, size, st.CaseOf(off, size)))
	}
	round := st.RoundSize()
	end := off + size

	rb := off / round
	re := (end - 1) / round
	lb := off - rb*round
	le := (end - 1) - re*round
	nb := int(lb / st.H)
	ne := int(le / st.H)
	sb := st.H - lb%st.H // boundary fragment at the request's start
	se := le%st.H + 1    // boundary fragment at the request's end
	dr := re - rb        // Δr
	dc := ne - nb        // Δc

	var d Distribution
	if dr == 0 {
		// The request lives inside one round's H zone: no SServer data.
		switch {
		case dc == 0:
			d.MTouched, d.MaxH = 1, size
		case dc == 1:
			d.MTouched, d.MaxH = 2, maxI64(sb, se)
		default:
			d.MTouched, d.MaxH = dc+1, st.H
		}
		return d
	}

	// dr >= 1: every SServer serves exactly Δr full stripes.
	d.NTouched, d.MaxS = st.N, dr*st.S

	// HServer columns: (Δr-1)·h from middle rounds plus the best f+g.
	base := (dr - 1) * st.H
	var peak int64
	switch {
	case dc == 0:
		// The begin and end columns coincide: it takes s_b + s_e; any
		// other column (when one exists) takes h from one partial round.
		peak = sb + se
		if st.M >= 2 {
			peak = maxI64(peak, st.H)
		}
		d.MTouched = st.M
		if dr == 1 && st.M > 1 {
			// One wrap, same column: every column is still reached by
			// either the head ([lb, R)) or the tail ([0, le]) partial.
			d.MTouched = st.M
		}
	case dc > 0:
		// Begin column takes s_b + h (head fragment + tail round),
		// end column h + s_e, and columns strictly between take 2h.
		peak = maxI64(sb, se) + st.H
		if dc > 1 {
			peak = 2 * st.H
		}
		d.MTouched = st.M
	default: // dc < 0
		// The tail partial reaches columns < n_e, the head partial
		// columns > n_b; columns in the gap (n_e, n_b) are served only
		// by whole middle rounds, absent when Δr == 1.
		peak = maxI64(sb, se)
		if ne > 0 || nb < st.M-1 {
			peak = maxI64(peak, st.H)
		}
		if dr == 1 {
			d.MTouched = st.M + 1 + dc // the paper's (M + 1 + Δc) row
		} else {
			d.MTouched = st.M
		}
	}
	d.MaxH = base + peak
	return d
}
