// Package layout implements the striping geometry of a hybrid parallel
// file system: how a logical byte range of a file maps onto the HDD
// servers (HServers) and SSD servers (SServers) that store it.
//
// The traditional scheme stripes a file round-robin with one fixed stripe
// size. The schemes this repository studies generalize that to a
// two-dimensional configuration (paper Fig. 2): within each striping round
// the first M stripes of size H land on the M HServers and the next N
// stripes of size S land on the N SServers. Fixed-size striping is the
// special case H == S; H == 0 or S == 0 places data on one server class
// only (the paper's extreme configurations, e.g. the {0 KB, 64 KB} optimum
// of Fig. 9).
//
// This package is shared by the simulated PFS (which needs exact
// sub-request lists) and by HARL's analytical cost model (which needs the
// per-class sub-request maxima and server counts of Section III-D).
package layout

import "fmt"

// Mapper is the placement contract a file layout provides to the file
// system: where every logical byte lives. Striping (two-tier) and Tiered
// (k-tier) both implement it.
type Mapper interface {
	// Validate reports whether the layout can hold data.
	Validate() error
	// Servers returns the number of data servers the layout spans.
	Servers() int
	// Locate maps a logical offset to (server index, server-local offset).
	Locate(off int64) (server int, local int64)
	// StripeOf returns the stripe size used by a server index.
	StripeOf(server int) int64
	// Map splits a logical range into per-server sub-requests.
	Map(off, size int64) []SubRequest
}

// Striping is one two-dimensional stripe configuration over a hybrid
// server group: M HServers with stripe size H followed by N SServers with
// stripe size S, repeated round-robin. Servers are numbered 0..M-1
// (HServers) then M..M+N-1 (SServers).
type Striping struct {
	M int   // number of HServers
	N int   // number of SServers
	H int64 // stripe size on each HServer, bytes (0 = skip HServers)
	S int64 // stripe size on each SServer, bytes (0 = skip SServers)
}

// Fixed returns the traditional one-dimensional layout: the same stripe
// size on every server.
func Fixed(m, n int, stripe int64) Striping {
	return Striping{M: m, N: n, H: stripe, S: stripe}
}

// Validate reports whether the configuration can hold data.
func (st Striping) Validate() error {
	switch {
	case st.M < 0 || st.N < 0 || st.M+st.N == 0:
		return fmt.Errorf("layout: invalid server counts M=%d N=%d", st.M, st.N)
	case st.H < 0 || st.S < 0:
		return fmt.Errorf("layout: negative stripe size H=%d S=%d", st.H, st.S)
	case st.HBytes()+st.SBytes() == 0:
		return fmt.Errorf("layout: striping %v stores no data", st)
	}
	return nil
}

// HBytes returns the bytes per round stored on HServers (M*H).
func (st Striping) HBytes() int64 { return int64(st.M) * st.H }

// SBytes returns the bytes per round stored on SServers (N*S).
func (st Striping) SBytes() int64 { return int64(st.N) * st.S }

// RoundSize returns the bytes in one full striping round,
// S = M*H + N*S in the paper's notation.
func (st Striping) RoundSize() int64 { return st.HBytes() + st.SBytes() }

// Servers returns the total server count M+N.
func (st Striping) Servers() int { return st.M + st.N }

// IsHServer reports whether the given server index is an HServer.
func (st Striping) IsHServer(server int) bool { return server < st.M }

// String renders the configuration like the paper's figures, e.g.
// "64K-64K x(6H+2S)".
func (st Striping) String() string {
	return fmt.Sprintf("%s-%s x(%dH+%dS)", kb(st.H), kb(st.S), st.M, st.N)
}

func kb(b int64) string {
	if b%1024 == 0 {
		return fmt.Sprintf("%dK", b/1024)
	}
	return fmt.Sprintf("%dB", b)
}

// Locate maps a logical file offset to (server, local offset). The local
// offset is the position within the server's backing object, which stores
// that server's stripes contiguously — exactly how OrangeFS datafiles
// work. Panics if the striping stores no data or off is negative.
func (st Striping) Locate(off int64) (server int, local int64) {
	if off < 0 {
		panic(fmt.Sprintf("layout: negative offset %d", off))
	}
	round := st.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", st))
	}
	r := off / round // rb in the paper: index of the striping round
	l := off % round // lb: position within the round
	if l < st.HBytes() {
		server = int(l / st.H)
		in := l % st.H
		return server, r*st.H + in
	}
	l -= st.HBytes()
	server = st.M + int(l/st.S)
	in := l % st.S
	return server, r*st.S + in
}

// StripeOf returns the stripe size used by the given server index.
func (st Striping) StripeOf(server int) int64 {
	if server < 0 || server >= st.Servers() {
		panic(fmt.Sprintf("layout: server %d out of range [0,%d)", server, st.Servers()))
	}
	if st.IsHServer(server) {
		return st.H
	}
	return st.S
}

// SubRequest is the portion of a file request served by one server: a
// contiguous range of the server's backing object.
type SubRequest struct {
	Server int   // global server index (0..M+N-1)
	Local  int64 // offset within the server's backing object
	Size   int64 // bytes
}

// Map splits the logical byte range [off, off+size) into per-server
// sub-requests. Because a contiguous logical range touches a contiguous
// run of each server's stripes, each touched server receives exactly one
// contiguous sub-request; results are ordered by server index.
func (st Striping) Map(off, size int64) []SubRequest {
	if off < 0 || size < 0 {
		panic(fmt.Sprintf("layout: invalid range %d+%d", off, size))
	}
	if size == 0 {
		return nil
	}
	round := st.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", st))
	}

	// first[i]/last[i] track the first and last local byte touched on
	// server i; contiguity of the stripe run guarantees everything in
	// between is covered.
	total := st.Servers()
	first := make([]int64, total)
	last := make([]int64, total)
	for i := range first {
		first[i] = -1
	}

	// Walk stripe fragments. Each iteration consumes to the end of the
	// current stripe (or the request, whichever is first), so the loop
	// runs O(size / min stripe + servers) times.
	pos := off
	end := off + size
	for pos < end {
		server, local := st.Locate(pos)
		stripe := st.StripeOf(server)
		inStripe := local % stripe
		frag := stripe - inStripe
		if rem := end - pos; frag > rem {
			frag = rem
		}
		if first[server] == -1 {
			first[server] = local
		}
		last[server] = local + frag
		pos += frag
	}

	var subs []SubRequest
	for i := 0; i < total; i++ {
		if first[i] >= 0 {
			subs = append(subs, SubRequest{Server: i, Local: first[i], Size: last[i] - first[i]})
		}
	}
	return subs
}

// Distribution summarizes how a request spreads over the two server
// classes — the four quantities (m, n, s_m, s_n) the paper's cost model
// consumes (Section III-D, Fig. 5): the number of HServers and SServers
// touched and the largest sub-request size on each class.
type Distribution struct {
	MTouched int   // m: HServers serving part of the request
	NTouched int   // n: SServers serving part of the request
	MaxH     int64 // s_m: largest sub-request on any HServer
	MaxS     int64 // s_n: largest sub-request on any SServer
}

// Distribute computes the Distribution of the request [off, off+size).
// It is exact for every placement case, including the four begin/end cases
// of the paper's Fig. 4 and the degenerate H==0 / S==0 configurations.
func (st Striping) Distribute(off, size int64) Distribution {
	var d Distribution
	for _, sub := range st.Map(off, size) {
		if st.IsHServer(sub.Server) {
			d.MTouched++
			if sub.Size > d.MaxH {
				d.MaxH = sub.Size
			}
		} else {
			d.NTouched++
			if sub.Size > d.MaxS {
				d.MaxS = sub.Size
			}
		}
	}
	return d
}
