package layout

import "fmt"

// Tiered generalizes Striping to any number of server performance
// classes — the paper's first future-work item ("extend our cost model
// to accommodate more than two server performance profiles"). Tier i
// contributes Counts[i] servers, each striped with Stripes[i] bytes per
// round; servers are numbered tier by tier in declaration order, and a
// zero stripe size skips the tier exactly as H == 0 or S == 0 do in the
// two-tier layout.
type Tiered struct {
	Counts  []int
	Stripes []int64
}

// TieredOf converts a two-tier Striping to the general form.
func TieredOf(st Striping) Tiered {
	return Tiered{Counts: []int{st.M, st.N}, Stripes: []int64{st.H, st.S}}
}

// Validate reports whether the configuration can hold data.
func (t Tiered) Validate() error {
	if len(t.Counts) == 0 || len(t.Counts) != len(t.Stripes) {
		return fmt.Errorf("layout: tiered config needs matching counts/stripes, got %d/%d",
			len(t.Counts), len(t.Stripes))
	}
	total := 0
	var bytes int64
	for i, c := range t.Counts {
		if c < 0 {
			return fmt.Errorf("layout: tier %d has negative count %d", i, c)
		}
		if t.Stripes[i] < 0 {
			return fmt.Errorf("layout: tier %d has negative stripe %d", i, t.Stripes[i])
		}
		total += c
		bytes += int64(c) * t.Stripes[i]
	}
	if total == 0 {
		return fmt.Errorf("layout: tiered config has no servers")
	}
	if bytes == 0 {
		return fmt.Errorf("layout: tiered config %v stores no data", t)
	}
	return nil
}

// Tiers returns the number of tiers.
func (t Tiered) Tiers() int { return len(t.Counts) }

// Servers returns the total server count.
func (t Tiered) Servers() int {
	total := 0
	for _, c := range t.Counts {
		total += c
	}
	return total
}

// RoundSize returns the bytes per striping round.
func (t Tiered) RoundSize() int64 {
	var bytes int64
	for i, c := range t.Counts {
		bytes += int64(c) * t.Stripes[i]
	}
	return bytes
}

// TierOf returns the tier owning a global server index.
func (t Tiered) TierOf(server int) int {
	if server < 0 {
		panic(fmt.Sprintf("layout: negative server %d", server))
	}
	for i, c := range t.Counts {
		if server < c {
			return i
		}
		server -= c
	}
	panic(fmt.Sprintf("layout: server out of range for %v", t))
}

// StripeOf returns the stripe size of a global server index.
func (t Tiered) StripeOf(server int) int64 {
	return t.Stripes[t.TierOf(server)]
}

// zoneStart returns the in-round byte offset where a tier's zone begins.
func (t Tiered) zoneStart(tier int) int64 {
	var z int64
	for i := 0; i < tier; i++ {
		z += int64(t.Counts[i]) * t.Stripes[i]
	}
	return z
}

// serverBase returns the global index of a tier's first server.
func (t Tiered) serverBase(tier int) int {
	base := 0
	for i := 0; i < tier; i++ {
		base += t.Counts[i]
	}
	return base
}

// Locate maps a logical offset to (global server index, server-local
// offset), like Striping.Locate.
func (t Tiered) Locate(off int64) (server int, local int64) {
	if off < 0 {
		panic(fmt.Sprintf("layout: negative offset %d", off))
	}
	round := t.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", t))
	}
	r := off / round
	l := off % round
	for i, c := range t.Counts {
		zone := int64(c) * t.Stripes[i]
		if l < zone {
			in := l % t.Stripes[i]
			server = t.serverBase(i) + int(l/t.Stripes[i])
			return server, r*t.Stripes[i] + in
		}
		l -= zone
	}
	panic("layout: unreachable: offset beyond round")
}

// Map splits [off, off+size) into per-server sub-requests, one contiguous
// range per touched server, ordered by server index.
func (t Tiered) Map(off, size int64) []SubRequest {
	if off < 0 || size < 0 {
		panic(fmt.Sprintf("layout: invalid range %d+%d", off, size))
	}
	if size == 0 {
		return nil
	}
	round := t.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", t))
	}
	total := t.Servers()
	first := make([]int64, total)
	last := make([]int64, total)
	for i := range first {
		first[i] = -1
	}
	pos := off
	end := off + size
	for pos < end {
		server, local := t.Locate(pos)
		stripe := t.StripeOf(server)
		frag := stripe - local%stripe
		if rem := end - pos; frag > rem {
			frag = rem
		}
		if first[server] == -1 {
			first[server] = local
		}
		last[server] = local + frag
		pos += frag
	}
	var subs []SubRequest
	for i := 0; i < total; i++ {
		if first[i] >= 0 {
			subs = append(subs, SubRequest{Server: i, Local: first[i], Size: last[i] - first[i]})
		}
	}
	return subs
}

// TierDistribution generalizes Distribution: per tier, the number of
// touched servers and the largest sub-request — the quantities the
// multi-profile cost model consumes.
type TierDistribution struct {
	Touched []int
	Max     []int64
}

// Distribute computes the per-tier distribution in O(total servers),
// independent of request size, mirroring Striping.DistributeAnalytic.
func (t Tiered) Distribute(off, size int64) TierDistribution {
	if off < 0 || size < 0 {
		panic(fmt.Sprintf("layout: invalid range %d+%d", off, size))
	}
	d := TierDistribution{Touched: make([]int, t.Tiers()), Max: make([]int64, t.Tiers())}
	if size == 0 {
		return d
	}
	round := t.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", t))
	}
	end := off + size
	rb := off / round
	re := (end - 1) / round
	mid := re - rb - 1
	if mid < 0 {
		mid = 0
	}
	for ti, c := range t.Counts {
		stripe := t.Stripes[ti]
		if stripe == 0 {
			continue
		}
		zs := t.zoneStart(ti)
		for i := 0; i < c; i++ {
			zone := zs + int64(i)*stripe
			cov := mid * stripe
			cov += overlap(off, end, rb*round+zone, rb*round+zone+stripe)
			if re > rb {
				cov += overlap(off, end, re*round+zone, re*round+zone+stripe)
			}
			if cov > 0 {
				d.Touched[ti]++
				if cov > d.Max[ti] {
					d.Max[ti] = cov
				}
			}
		}
	}
	return d
}

// String renders the configuration, e.g. "[6x16K 1x64K 1x256K]".
func (t Tiered) String() string {
	s := "["
	for i, c := range t.Counts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%dx%s", c, kb(t.Stripes[i]))
	}
	return s + "]"
}
