package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCaseOf(t *testing.T) {
	st := Striping{M: 2, N: 2, H: 10, S: 20} // H zone [0,20), S zone [20,60)
	cases := []struct {
		off, size int64
		want      CaseKind
	}{
		{0, 10, CaseA},  // within H zone
		{5, 30, CaseB},  // H -> S
		{25, 40, CaseC}, // S -> wraps -> H (ends at 64 in next round's H zone)
		{25, 20, CaseD}, // within S zone
		{0, 60, CaseC},  // covers a whole round, ends at byte 59 in S zone -> D actually
	}
	// Recompute the two tricky expectations from Locate directly.
	for i, c := range cases {
		beginSrv, _ := st.Locate(c.off)
		endSrv, _ := st.Locate(c.off + c.size - 1)
		want := CaseA
		switch {
		case st.IsHServer(beginSrv) && !st.IsHServer(endSrv):
			want = CaseB
		case !st.IsHServer(beginSrv) && st.IsHServer(endSrv):
			want = CaseC
		case !st.IsHServer(beginSrv) && !st.IsHServer(endSrv):
			want = CaseD
		}
		if got := st.CaseOf(c.off, c.size); got != want {
			t.Errorf("case %d: CaseOf(%d,%d) = %v, want %v", i, c.off, c.size, got, want)
		}
	}
	mustPanic(t, func() { st.CaseOf(0, 0) })
}

func TestCaseKindString(t *testing.T) {
	if CaseA.String() != "a" || CaseD.String() != "d" {
		t.Fatal("case letters wrong")
	}
}

// TestDistributeCaseAExhaustive enumerates every case-(a) request over a
// small geometry and checks the closed form against the exact geometric
// computation.
func TestDistributeCaseAExhaustive(t *testing.T) {
	geometries := []Striping{
		{M: 2, N: 1, H: 4, S: 6},
		{M: 3, N: 2, H: 5, S: 7},
		{M: 1, N: 1, H: 6, S: 10},
		{M: 4, N: 0, H: 3, S: 0},
		{M: 6, N: 2, H: 4, S: 12},
	}
	for _, st := range geometries {
		round := st.RoundSize()
		limit := 4 * round
		for off := int64(0); off < 2*round; off++ {
			for end := off + 1; end <= off+limit; end++ {
				size := end - off
				if st.CaseOf(off, size) != CaseA {
					continue
				}
				got := st.DistributeCaseA(off, size)
				want := st.DistributeAnalytic(off, size)
				if got != want {
					t.Fatalf("%v request (%d,%d): closed form %+v, exact %+v", st, off, size, got, want)
				}
			}
		}
	}
}

// Property: random case-(a) requests over realistic stripe sizes agree.
func TestDistributeCaseARandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := Striping{
			M: rng.Intn(6) + 1,
			N: rng.Intn(3),
			H: int64(rng.Intn(64)+1) * 4096,
			S: int64(rng.Intn(64)+1) * 4096,
		}
		if st.N == 0 {
			st.S = 0
		}
		for trial := 0; trial < 50; trial++ {
			off := rng.Int63n(16 << 20)
			size := rng.Int63n(8<<20) + 1
			if st.CaseOf(off, size) != CaseA {
				continue
			}
			if st.DistributeCaseA(off, size) != st.DistributeAnalytic(off, size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeCaseAPanics(t *testing.T) {
	st := Striping{M: 2, N: 2, H: 10, S: 20}
	mustPanic(t, func() { st.DistributeCaseA(25, 5) }) // case (d)
	mustPanic(t, func() { (Striping{M: 0, N: 2, H: 0, S: 10}).DistributeCaseA(0, 5) })
}
