package layout

import (
	"math/rand"
	"testing"
)

// randomStripings yields a spread of configurations including the
// degenerate H==0 / S==0 layouts and single-class systems.
func randomStripings(rng *rand.Rand, n int) []Striping {
	sts := []Striping{
		{M: 6, N: 2, H: 4 << 10, S: 64 << 10},
		{M: 6, N: 2, H: 0, S: 64 << 10},
		{M: 6, N: 2, H: 64 << 10, S: 0},
		{M: 4, N: 0, H: 16 << 10, S: 0},
		{M: 0, N: 3, H: 0, S: 32 << 10},
		{M: 1, N: 1, H: 4 << 10, S: 8 << 10},
	}
	for len(sts) < n {
		st := Striping{
			M: rng.Intn(8),
			N: rng.Intn(8),
			H: int64(rng.Intn(64)) * 4096,
			S: int64(rng.Intn(64)) * 4096,
		}
		if st.Validate() != nil {
			continue
		}
		sts = append(sts, st)
	}
	return sts
}

func TestGeometryMatchesDistributeAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, st := range randomStripings(rng, 40) {
		g, err := NewGeometry(st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if g.Striping() != st {
			t.Fatalf("Striping() = %v, want %v", g.Striping(), st)
		}
		for trial := 0; trial < 200; trial++ {
			off := rng.Int63n(1 << 28)
			size := rng.Int63n(4<<20) + 1
			want := st.DistributeAnalytic(off, size)
			if got := g.Distribute(off, size); got != want {
				t.Fatalf("%v Distribute(%d,%d) = %+v, want %+v", st, off, size, got, want)
			}
			// Cross-check against the exact fragment walk.
			if got := st.Distribute(off, size); got != want {
				t.Fatalf("%v analytic %+v disagrees with walk %+v at (%d,%d)", st, want, got, off, size)
			}
		}
	}
}

// TestGeometryCanonicalPeriodicity pins the property the search cache
// relies on: distributions are invariant under shifting the offset by
// whole striping rounds.
func TestGeometryCanonicalPeriodicity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, st := range randomStripings(rng, 40) {
		g, err := NewGeometry(st)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			off := rng.Int63n(1 << 30)
			size := rng.Int63n(8<<20) + 1
			canon := g.Canonical(off)
			if canon < 0 || canon >= st.RoundSize() {
				t.Fatalf("Canonical(%d) = %d outside round [0,%d)", off, canon, st.RoundSize())
			}
			if got, want := g.Distribute(canon, size), g.Distribute(off, size); got != want {
				t.Fatalf("%v: Distribute(%d,%d)=%+v != Distribute(%d,%d)=%+v",
					st, canon, size, got, off, size, want)
			}
		}
	}
}

func TestGeometryErrorsAndPanics(t *testing.T) {
	if _, err := NewGeometry(Striping{}); err == nil {
		t.Fatal("empty striping accepted")
	}
	if _, err := NewGeometry(Striping{M: 2, N: 2, H: 0, S: 0}); err == nil {
		t.Fatal("zero-stripe striping accepted")
	}
	g, err := NewGeometry(Striping{M: 2, N: 2, H: 4096, S: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if g.Distribute(0, 0) != (Distribution{}) {
		t.Fatal("zero-size request should distribute to nothing")
	}
	mustPanicGeom(t, func() { g.Distribute(-1, 10) })
	mustPanicGeom(t, func() { g.Distribute(0, -1) })
	mustPanicGeom(t, func() { g.Canonical(-1) })
}

func mustPanicGeom(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
