package layout

import "fmt"

// DistributeAnalytic computes the same Distribution as Distribute in
// O(M+N) time, independent of the request size. It is the form HARL's
// stripe-size search uses: Algorithm 2 evaluates the cost model for every
// (h, s) candidate pair over every request of a region, so the per-request
// distribution must not require walking stripe fragments.
//
// The computation lives on Geometry; callers scoring many requests under
// one configuration should build a Geometry once (and see
// Geometry.Canonical for memoizing across requests).
func (st Striping) DistributeAnalytic(off, size int64) Distribution {
	round := st.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", st))
	}
	g := Geometry{st: st, round: round, hBytes: st.HBytes()}
	return g.Distribute(off, size)
}

// overlap returns the length of [a,b) ∩ [c,d).
func overlap(a, b, c, d int64) int64 {
	lo, hi := a, b
	if c > lo {
		lo = c
	}
	if d < hi {
		hi = d
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
