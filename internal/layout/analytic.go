package layout

import "fmt"

// DistributeAnalytic computes the same Distribution as Distribute in
// O(M+N) time, independent of the request size. It is the form HARL's
// stripe-size search uses: Algorithm 2 evaluates the cost model for every
// (h, s) candidate pair over every request of a region, so the per-request
// distribution must not require walking stripe fragments.
//
// For each server the covered byte count is derived from round geometry:
// the server's stripe occupies a fixed window of every striping round, the
// middle rounds of the request are covered entirely, and the first and
// last rounds contribute their window overlaps.
func (st Striping) DistributeAnalytic(off, size int64) Distribution {
	if off < 0 || size < 0 {
		panic(fmt.Sprintf("layout: invalid range %d+%d", off, size))
	}
	var d Distribution
	if size == 0 {
		return d
	}
	round := st.RoundSize()
	if round <= 0 {
		panic(fmt.Sprintf("layout: %v stores no data", st))
	}
	end := off + size
	rb := off / round
	re := (end - 1) / round
	mid := re - rb - 1
	if mid < 0 {
		mid = 0
	}

	cover := func(zone, stripe int64) int64 {
		cov := mid * stripe
		cov += overlap(off, end, rb*round+zone, rb*round+zone+stripe)
		if re > rb {
			cov += overlap(off, end, re*round+zone, re*round+zone+stripe)
		}
		return cov
	}

	if st.H > 0 {
		for i := 0; i < st.M; i++ {
			if cov := cover(int64(i)*st.H, st.H); cov > 0 {
				d.MTouched++
				if cov > d.MaxH {
					d.MaxH = cov
				}
			}
		}
	}
	if st.S > 0 {
		hz := st.HBytes()
		for i := 0; i < st.N; i++ {
			if cov := cover(hz+int64(i)*st.S, st.S); cov > 0 {
				d.NTouched++
				if cov > d.MaxS {
					d.MaxS = cov
				}
			}
		}
	}
	return d
}

// overlap returns the length of [a,b) ∩ [c,d).
func overlap(a, b, c, d int64) int64 {
	lo, hi := a, b
	if c > lo {
		lo = c
	}
	if d < hi {
		hi = d
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
