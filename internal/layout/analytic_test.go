package layout

import (
	"testing"
	"testing/quick"
)

// Property: DistributeAnalytic agrees exactly with the fragment-walk
// Distribute for arbitrary configurations and ranges.
func TestDistributeAnalyticMatchesWalkProperty(t *testing.T) {
	prop := func(m8, n8 uint8, h16, s16 uint16, off32, size32 uint32) bool {
		m := int(m8%7) + 1
		n := int(n8 % 7)
		h := int64(h16%32) * 4096
		s := int64(s16%32) * 4096
		st := Striping{M: m, N: n, H: h, S: s}
		if st.Validate() != nil {
			return true
		}
		off := int64(off32 % (4 << 20))
		size := int64(size32 % (4 << 20))
		return st.DistributeAnalytic(off, size) == st.Distribute(off, size)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeAnalyticHandWorked(t *testing.T) {
	st := Striping{M: 2, N: 1, H: 10, S: 30}
	// Same example as TestDistributeByHand.
	d := st.DistributeAnalytic(5, 40)
	want := Distribution{MTouched: 2, NTouched: 1, MaxH: 10, MaxS: 25}
	if d != want {
		t.Fatalf("d = %+v, want %+v", d, want)
	}
	if got := st.DistributeAnalytic(0, 0); got != (Distribution{}) {
		t.Fatalf("zero-size = %+v", got)
	}
}

func TestDistributeAnalyticPanics(t *testing.T) {
	st := Fixed(2, 2, 1024)
	mustPanic(t, func() { st.DistributeAnalytic(-1, 5) })
	mustPanic(t, func() { (Striping{M: 1, N: 1}).DistributeAnalytic(0, 5) })
}

// The four sub-request distribution cases of the paper's Figure 4: the
// request may begin and end on either server class. Check each case's
// class participation explicitly.
func TestDistributeFigure4Cases(t *testing.T) {
	st := Striping{M: 2, N: 2, H: 10, S: 20} // round: H zone [0,20), S zone [20,60)
	cases := []struct {
		name     string
		off, end int64
		wantHs   bool // request begins on an HServer
		wantSs   bool // request ends on an SServer
	}{
		{"a: begins H, ends H", 5, 15, true, false},
		{"b: begins H, ends S", 5, 45, true, true},
		{"c: begins S, ends H (crosses round)", 25, 75, true, true},
		{"d: begins S, ends S", 25, 55, false, true},
	}
	for _, c := range cases {
		d := st.DistributeAnalytic(c.off, c.end-c.off)
		if (d.MTouched > 0) != c.wantHs && (d.NTouched > 0) != c.wantSs {
			t.Errorf("%s: distribution %+v", c.name, d)
		}
		if d != st.Distribute(c.off, c.end-c.off) {
			t.Errorf("%s: analytic and walk disagree", c.name)
		}
	}
}

func BenchmarkDistributeWalk(b *testing.B) {
	st := Striping{M: 6, N: 2, H: 16 << 10, S: 128 << 10}
	for i := 0; i < b.N; i++ {
		st.Distribute(123456, 2<<20)
	}
}

func BenchmarkDistributeAnalytic(b *testing.B) {
	st := Striping{M: 6, N: 2, H: 16 << 10, S: 128 << 10}
	for i := 0; i < b.N; i++ {
		st.DistributeAnalytic(123456, 2<<20)
	}
}
