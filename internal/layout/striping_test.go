package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveLocate is the byte-at-a-time oracle: walk the round-robin pattern
// from offset 0 counting stripe fragments.
func naiveLocate(st Striping, off int64) (server int, local int64) {
	consumed := make([]int64, st.Servers()) // bytes already stored per server
	var pos int64
	for {
		for srv := 0; srv < st.Servers(); srv++ {
			stripe := st.StripeOf(srv)
			if stripe == 0 {
				continue
			}
			if off < pos+stripe {
				return srv, consumed[srv] + (off - pos)
			}
			pos += stripe
			consumed[srv] += stripe
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		st Striping
		ok bool
	}{
		{Striping{M: 6, N: 2, H: 64 << 10, S: 64 << 10}, true},
		{Striping{M: 6, N: 2, H: 0, S: 64 << 10}, true},
		{Striping{M: 6, N: 2, H: 64 << 10, S: 0}, true},
		{Striping{M: 0, N: 2, H: 0, S: 64 << 10}, true},
		{Striping{M: 8, N: 0, H: 64 << 10, S: 0}, true},
		{Striping{M: 6, N: 2, H: 0, S: 0}, false},
		{Striping{M: 0, N: 0, H: 1, S: 1}, false},
		{Striping{M: -1, N: 2, H: 1, S: 1}, false},
		{Striping{M: 6, N: 2, H: -4, S: 1}, false},
		{Striping{M: 0, N: 2, H: 1024, S: 0}, false}, // all data assigned to absent servers
	}
	for i, c := range cases {
		err := c.st.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d (%v): Validate = %v, want ok=%v", i, c.st, err, c.ok)
		}
	}
}

func TestFixedIsSymmetric(t *testing.T) {
	st := Fixed(6, 2, 64<<10)
	if st.H != st.S || st.H != 64<<10 {
		t.Fatalf("Fixed = %+v", st)
	}
	if st.RoundSize() != 8*64<<10 {
		t.Fatalf("round = %d", st.RoundSize())
	}
}

func TestLocateAgainstOracle(t *testing.T) {
	configs := []Striping{
		{M: 6, N: 2, H: 64 << 10, S: 64 << 10},
		{M: 6, N: 2, H: 16 << 10, S: 128 << 10},
		{M: 2, N: 6, H: 4 << 10, S: 32 << 10},
		{M: 6, N: 2, H: 0, S: 64 << 10},
		{M: 6, N: 2, H: 32 << 10, S: 0},
		{M: 1, N: 1, H: 4096, S: 12288},
	}
	rng := rand.New(rand.NewSource(1))
	for _, st := range configs {
		for trial := 0; trial < 60; trial++ {
			off := rng.Int63n(4 * st.RoundSize())
			srv, local := st.Locate(off)
			wantSrv, wantLocal := naiveLocate(st, off)
			if srv != wantSrv || local != wantLocal {
				t.Fatalf("%v Locate(%d) = (%d,%d), oracle (%d,%d)", st, off, srv, local, wantSrv, wantLocal)
			}
		}
	}
}

func TestLocateFirstRoundByHand(t *testing.T) {
	st := Striping{M: 2, N: 1, H: 10, S: 30} // round = 50
	checks := []struct {
		off    int64
		server int
		local  int64
	}{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {19, 1, 9},
		{20, 2, 0}, {49, 2, 29},
		{50, 0, 10}, {60, 1, 10}, {70, 2, 30}, {99, 2, 59},
	}
	for _, c := range checks {
		srv, local := st.Locate(c.off)
		if srv != c.server || local != c.local {
			t.Errorf("Locate(%d) = (%d,%d), want (%d,%d)", c.off, srv, local, c.server, c.local)
		}
	}
}

func TestMapCoversRequestExactly(t *testing.T) {
	st := Striping{M: 6, N: 2, H: 16 << 10, S: 128 << 10}
	subs := st.Map(100, 512<<10)
	var total int64
	for _, s := range subs {
		total += s.Size
		if s.Size <= 0 {
			t.Fatalf("empty sub-request %+v", s)
		}
	}
	if total != 512<<10 {
		t.Fatalf("mapped %d bytes, want %d", total, 512<<10)
	}
}

func TestMapZeroAndErrors(t *testing.T) {
	st := Fixed(6, 2, 64<<10)
	if subs := st.Map(0, 0); subs != nil {
		t.Fatalf("zero-size map = %v", subs)
	}
	mustPanic(t, func() { st.Map(-1, 10) })
	mustPanic(t, func() { st.Map(0, -1) })
	mustPanic(t, func() { st.Locate(-1) })
	mustPanic(t, func() { (Striping{M: 1, N: 1}).Map(0, 10) })
	mustPanic(t, func() { st.StripeOf(99) })
}

func TestMapSingleStripeWithinOneServer(t *testing.T) {
	st := Fixed(6, 2, 64<<10)
	subs := st.Map(10, 100) // inside server 0's first stripe
	if len(subs) != 1 || subs[0].Server != 0 || subs[0].Local != 10 || subs[0].Size != 100 {
		t.Fatalf("subs = %+v", subs)
	}
}

func TestMapSkipsHServersWhenHZero(t *testing.T) {
	st := Striping{M: 6, N: 2, H: 0, S: 64 << 10}
	subs := st.Map(0, 1<<20)
	for _, s := range subs {
		if st.IsHServer(s.Server) {
			t.Fatalf("data landed on HServer: %+v", s)
		}
	}
	if len(subs) != 2 {
		t.Fatalf("expected both SServers, got %+v", subs)
	}
}

func TestMapLocalContiguityMatchesByteOracle(t *testing.T) {
	// Byte-level oracle: mark every (server, local) byte, then check Map
	// yields exactly those bytes.
	st := Striping{M: 2, N: 2, H: 7, S: 13} // awkward sizes on purpose
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		off := rng.Int63n(200)
		size := rng.Int63n(300) + 1
		want := make(map[int]map[int64]bool)
		for b := off; b < off+size; b++ {
			srv, local := st.Locate(b)
			if want[srv] == nil {
				want[srv] = make(map[int64]bool)
			}
			want[srv][local] = true
		}
		for _, sub := range st.Map(off, size) {
			for i := int64(0); i < sub.Size; i++ {
				if !want[sub.Server][sub.Local+i] {
					t.Fatalf("Map claims byte (%d,%d) not in oracle (off=%d size=%d)", sub.Server, sub.Local+i, off, size)
				}
				delete(want[sub.Server], sub.Local+i)
			}
		}
		for srv, bytes := range want {
			if len(bytes) > 0 {
				t.Fatalf("Map missed %d bytes on server %d (off=%d size=%d)", len(bytes), srv, off, size)
			}
		}
	}
}

func TestDistributeByHand(t *testing.T) {
	// M=2,N=1,H=10,S=30: round 50. Request [5,45): touches server0 [5,10),
	// server1 [10,20), server2 [20,45) -> sizes 5,10,25.
	st := Striping{M: 2, N: 1, H: 10, S: 30}
	d := st.Distribute(5, 40)
	if d.MTouched != 2 || d.NTouched != 1 {
		t.Fatalf("touched = %d/%d, want 2/1", d.MTouched, d.NTouched)
	}
	if d.MaxH != 10 || d.MaxS != 25 {
		t.Fatalf("max = %d/%d, want 10/25", d.MaxH, d.MaxS)
	}
}

func TestDistributeWholeRounds(t *testing.T) {
	st := Striping{M: 6, N: 2, H: 16 << 10, S: 64 << 10}
	// Exactly 3 rounds starting at 0: every server gets 3 full stripes.
	d := st.Distribute(0, 3*st.RoundSize())
	if d.MTouched != 6 || d.NTouched != 2 {
		t.Fatalf("touched = %+v", d)
	}
	if d.MaxH != 3*16<<10 || d.MaxS != 3*64<<10 {
		t.Fatalf("max = %d/%d", d.MaxH, d.MaxS)
	}
}

// Property: Map conserves bytes and produces at most one sub-request per
// server for any valid configuration and range.
func TestMapConservationProperty(t *testing.T) {
	prop := func(m8, n8 uint8, h32, s32 uint32, off32, size32 uint32) bool {
		m := int(m8%7) + 1
		n := int(n8 % 7)
		h := int64(h32%64) * 1024
		s := int64(s32%64) * 1024
		st := Striping{M: m, N: n, H: h, S: s}
		if st.Validate() != nil {
			return true // skip invalid configs
		}
		off := int64(off32 % (8 << 20))
		size := int64(size32%(8<<20)) + 1
		seen := make(map[int]bool)
		var total int64
		for _, sub := range st.Map(off, size) {
			if seen[sub.Server] {
				return false // more than one sub-request per server
			}
			seen[sub.Server] = true
			if sub.Size <= 0 || sub.Local < 0 {
				return false
			}
			total += sub.Size
		}
		return total == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Locate is consistent with Map — the first byte of the range
// lands exactly where Locate says.
func TestLocateMapConsistencyProperty(t *testing.T) {
	prop := func(off32, size32 uint32) bool {
		st := Striping{M: 6, N: 2, H: 16 << 10, S: 128 << 10}
		off := int64(off32 % (16 << 20))
		size := int64(size32%(2<<20)) + 1
		srv, local := st.Locate(off)
		for _, sub := range st.Map(off, size) {
			if sub.Server == srv {
				return sub.Local == local
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	st := Striping{M: 6, N: 2, H: 36 << 10, S: 148 << 10}
	if got := st.String(); got != "36K-148K x(6H+2S)" {
		t.Fatalf("String = %q", got)
	}
	odd := Striping{M: 1, N: 1, H: 1000, S: 1024}
	if got := odd.String(); got != "1000B-1K x(1H+1S)" {
		t.Fatalf("String = %q", got)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fn()
}
