package layout

import "fmt"

// Geometry is a validated, reusable evaluator of one striping
// configuration: the round quantities DistributeAnalytic re-derives on
// every call, computed once. HARL's stripe-size search scores thousands
// of requests under each (h, s) candidate, so the per-request work must
// be the cover arithmetic alone.
//
// Geometry also exposes the property that makes distributions cacheable:
// Distribute is periodic in the round size (see Canonical), so requests
// that differ only by whole striping rounds share one computation.
type Geometry struct {
	st     Striping
	round  int64 // st.RoundSize()
	hBytes int64 // st.HBytes()
}

// NewGeometry validates st and precomputes its round geometry.
func NewGeometry(st Striping) (Geometry, error) {
	if err := st.Validate(); err != nil {
		return Geometry{}, err
	}
	return Geometry{st: st, round: st.RoundSize(), hBytes: st.HBytes()}, nil
}

// Striping returns the configuration the geometry evaluates.
func (g Geometry) Striping() Striping { return g.st }

// Canonical reduces a file offset to its position within the striping
// round. Every cover term of Distribute depends on the offset only
// relative to the request's first round boundary, so
//
//	g.Distribute(off, size) == g.Distribute(g.Canonical(off), size)
//
// exactly (the quantities are integers; no rounding is involved). Callers
// memoizing distributions key them by (Canonical(offset), size).
func (g Geometry) Canonical(off int64) int64 {
	if off < 0 {
		panic(fmt.Sprintf("layout: negative offset %d", off))
	}
	return off % g.round
}

// Distribute computes the Distribution of the request [off, off+size),
// identical to Striping.DistributeAnalytic but without re-deriving the
// round geometry per call.
//
// For each server the covered byte count comes from round geometry: the
// server's stripe occupies a fixed window of every striping round, the
// middle rounds of the request are covered entirely, and the first and
// last rounds contribute their window overlaps.
func (g Geometry) Distribute(off, size int64) Distribution {
	if off < 0 || size < 0 {
		panic(fmt.Sprintf("layout: invalid range %d+%d", off, size))
	}
	var d Distribution
	if size == 0 {
		return d
	}
	end := off + size
	rb := off / g.round
	re := (end - 1) / g.round
	mid := re - rb - 1
	if mid < 0 {
		mid = 0
	}

	cover := func(zone, stripe int64) int64 {
		cov := mid * stripe
		cov += overlap(off, end, rb*g.round+zone, rb*g.round+zone+stripe)
		if re > rb {
			cov += overlap(off, end, re*g.round+zone, re*g.round+zone+stripe)
		}
		return cov
	}

	if g.st.H > 0 {
		for i := 0; i < g.st.M; i++ {
			if cov := cover(int64(i)*g.st.H, g.st.H); cov > 0 {
				d.MTouched++
				if cov > d.MaxH {
					d.MaxH = cov
				}
			}
		}
	}
	if g.st.S > 0 {
		for i := 0; i < g.st.N; i++ {
			if cov := cover(g.hBytes+int64(i)*g.st.S, g.st.S); cov > 0 {
				d.NTouched++
				if cov > d.MaxS {
					d.MaxS = cov
				}
			}
		}
	}
	return d
}
