package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"harl/internal/device"
	"harl/internal/sim"
)

func rec(op device.Op, off, size int64) Record {
	return Record{PID: 100, Rank: 0, FD: 3, Op: op, Offset: off, Size: size, Start: 1, End: 2}
}

func TestRecordValidate(t *testing.T) {
	if err := rec(device.Read, 0, 1).Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []Record{
		{Offset: -1, Size: 1, End: 1},
		{Offset: 0, Size: 0, End: 1},
		{Offset: 0, Size: 1, Start: 5, End: 1},
		{Offset: 0, Size: 1, End: 1, Op: device.Op(9)},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad record %d validated", i)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Record(rec(device.Read, 100, 10))
	c.Record(rec(device.Write, 0, 20))
	tr := c.Trace()
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Capture order preserved.
	if tr.Records[0].Offset != 100 {
		t.Fatal("capture order broken")
	}
	mustPanic(t, func() { c.Record(Record{Size: -1}) })
}

func TestSortByOffsetStable(t *testing.T) {
	tr := &Trace{Records: []Record{
		rec(device.Read, 300, 1),
		rec(device.Write, 100, 2),
		rec(device.Read, 100, 3),
		rec(device.Read, 200, 4),
	}}
	tr.SortByOffset()
	offs := []int64{100, 100, 200, 300}
	for i, want := range offs {
		if tr.Records[i].Offset != want {
			t.Fatalf("order = %+v", tr.Records)
		}
	}
	// Stability: the two offset-100 records keep relative order (sizes 2, 3).
	if tr.Records[0].Size != 2 || tr.Records[1].Size != 3 {
		t.Fatal("sort is not stable")
	}
}

func TestSortByStart(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Size: 1, Start: 30, End: 31},
		{Size: 1, Start: 10, End: 11},
		{Size: 1, Start: 20, End: 21},
	}}
	tr.SortByStart()
	if tr.Records[0].Start != 10 || tr.Records[2].Start != 30 {
		t.Fatalf("order = %+v", tr.Records)
	}
}

func TestFilterReadsWrites(t *testing.T) {
	tr := &Trace{Records: []Record{
		rec(device.Read, 0, 1),
		rec(device.Write, 1, 1),
		rec(device.Read, 2, 1),
	}}
	if tr.Reads().Len() != 2 || tr.Writes().Len() != 1 {
		t.Fatalf("reads/writes = %d/%d", tr.Reads().Len(), tr.Writes().Len())
	}
	// Filter must not alias the original backing array.
	tr.Reads().Records[0].Offset = 999
	if tr.Records[0].Offset == 999 {
		t.Fatal("filter aliases the source trace")
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Records: []Record{
		rec(device.Read, 0, 100),
		rec(device.Write, 1000, 300),
		rec(device.Read, 50, 200),
	}}
	s := tr.Summarize()
	if s.Requests != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Bytes != 600 || s.BytesRead != 300 || s.BytesWrite != 300 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.MinSize != 100 || s.MaxSize != 300 || s.AvgSize != 200 {
		t.Fatalf("sizes: %+v", s)
	}
	if s.MaxOffset != 1300 {
		t.Fatalf("extent = %d", s.MaxOffset)
	}
	if s.DistinctFDs != 1 {
		t.Fatalf("fds = %d", s.DistinctFDs)
	}
	if (&Trace{}).Summarize().Requests != 0 {
		t.Fatal("empty trace summary should be zero")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := &Trace{Records: []Record{
		{PID: 1, Rank: 2, FD: 3, Op: device.Read, Offset: 4, Size: 5, Start: 6, End: 7},
		{PID: 10, Rank: 0, FD: 5, Op: device.Write, Offset: 1 << 40, Size: 512 << 10, Start: 0, End: sim.Time(3 * sim.Second)},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "#iosig-trace v1\n\n# a comment\n1 0 3 r 0 100 0 5\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Records[0].Size != 100 {
		t.Fatalf("parsed %+v", tr.Records)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1 0 3 r 0 100 0 5\n",                     // missing header
		"#iosig-trace v1\n1 0 3 r 0 100\n",        // short line
		"#iosig-trace v1\n1 0 3 x 0 100 0 5\n",    // bad op
		"#iosig-trace v1\nz 0 3 r 0 100 0 5\n",    // bad pid
		"#iosig-trace v1\n1 0 3 r -9 100 0 5\n",   // negative offset
		"#iosig-trace v1\n1 0 3 r 0 0 0 5\n",      // zero size
		"#iosig-trace v1\n1 0 3 r 0 100 9 5\n",    // end before start
		"#iosig-trace v1\n1 0 3 r 0 1e3 0 5\n",    // non-integer size
		"#iosig-trace v1\n1 0 3 r 0 100 0 5 66\n", // extra field
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestReadEmptyInput(t *testing.T) {
	tr, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty input: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty input should give empty trace")
	}
}

// Property: Write/Read round-trips arbitrary valid traces.
func TestCodecProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		for i := 0; i < int(n8%50); i++ {
			op := device.Read
			if rng.Intn(2) == 1 {
				op = device.Write
			}
			start := sim.Time(rng.Int63n(1 << 40))
			tr.Records = append(tr.Records, Record{
				PID:    rng.Intn(1 << 15),
				Rank:   rng.Intn(1024),
				FD:     rng.Intn(64),
				Op:     op,
				Offset: rng.Int63n(1 << 45),
				Size:   rng.Int63n(1<<22) + 1,
				Start:  start,
				End:    start + sim.Time(rng.Int63n(1<<30)),
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Records, tr.Records) ||
			(len(got.Records) == 0 && len(tr.Records) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fn()
}
