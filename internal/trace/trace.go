// Package trace is the IOSIG stand-in: it collects, stores and analyzes
// the run-time I/O access information HARL's analysis phase consumes
// (Section III-B of the paper).
//
// A trace is a sequence of records, one per file request, carrying exactly
// the fields the paper lists: process ID, MPI rank, file descriptor,
// operation type, offset, request size, and timestamps. The package
// provides a collector for instrumented runs, a line-oriented text codec
// for trace files, offset sorting (the collector sorts requests in
// ascending offset order to feed the region-division algorithm), and
// workload summaries.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"harl/internal/device"
	"harl/internal/sim"
)

// Record is one traced file request.
type Record struct {
	PID    int       // operating-system process id
	Rank   int       // MPI rank
	FD     int       // file descriptor
	Op     device.Op // read or write
	Offset int64     // file offset, bytes
	Size   int64     // request size, bytes
	Start  sim.Time  // operation begin timestamp
	End    sim.Time  // operation end timestamp
}

// Validate reports whether the record is well-formed.
func (r Record) Validate() error {
	switch {
	case r.Offset < 0:
		return fmt.Errorf("trace: negative offset %d", r.Offset)
	case r.Size <= 0:
		return fmt.Errorf("trace: non-positive size %d", r.Size)
	case r.End < r.Start:
		return fmt.Errorf("trace: end %v before start %v", r.End, r.Start)
	case r.Op != device.Read && r.Op != device.Write:
		return fmt.Errorf("trace: unknown op %d", r.Op)
	}
	return nil
}

// Trace is an ordered collection of records.
type Trace struct {
	Records []Record
}

// Collector accumulates records during an instrumented run. It is the
// "trace collector" of the paper's Tracing Phase.
type Collector struct {
	trace Trace
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends one request; malformed records panic, as they always
// indicate an instrumentation bug rather than bad input data.
func (c *Collector) Record(r Record) {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	c.trace.Records = append(c.trace.Records, r)
}

// Trace returns the collected trace. The records are returned in capture
// order; call SortByOffset before feeding the region divider.
func (c *Collector) Trace() *Trace { return &c.trace }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// SortByOffset sorts records by ascending offset (stable, so equal-offset
// requests keep capture order) — the order the region-division algorithm
// requires.
func (t *Trace) SortByOffset() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Offset < t.Records[j].Offset
	})
}

// SortByStart sorts records by their begin timestamp (capture order for
// merged multi-process traces).
func (t *Trace) SortByStart() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Start < t.Records[j].Start
	})
}

// Filter returns a new trace containing the records keep accepts.
func (t *Trace) Filter(keep func(Record) bool) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if keep(r) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Reads returns only the read records.
func (t *Trace) Reads() *Trace {
	return t.Filter(func(r Record) bool { return r.Op == device.Read })
}

// Writes returns only the write records.
func (t *Trace) Writes() *Trace {
	return t.Filter(func(r Record) bool { return r.Op == device.Write })
}

// Summary aggregates workload features of a trace.
type Summary struct {
	Requests    int
	Reads       int
	Writes      int
	Bytes       int64
	BytesRead   int64
	BytesWrite  int64
	MinSize     int64
	MaxSize     int64
	AvgSize     float64
	MaxOffset   int64 // highest byte touched + 1 (logical extent)
	DistinctFDs int
}

// Summarize computes a Summary; the zero Summary is returned for an empty
// trace.
func (t *Trace) Summarize() Summary {
	var s Summary
	if len(t.Records) == 0 {
		return s
	}
	s.MinSize = t.Records[0].Size
	fds := make(map[int]bool)
	for _, r := range t.Records {
		s.Requests++
		s.Bytes += r.Size
		if r.Op == device.Read {
			s.Reads++
			s.BytesRead += r.Size
		} else {
			s.Writes++
			s.BytesWrite += r.Size
		}
		if r.Size < s.MinSize {
			s.MinSize = r.Size
		}
		if r.Size > s.MaxSize {
			s.MaxSize = r.Size
		}
		if end := r.Offset + r.Size; end > s.MaxOffset {
			s.MaxOffset = end
		}
		fds[r.FD] = true
	}
	s.AvgSize = float64(s.Bytes) / float64(s.Requests)
	s.DistinctFDs = len(fds)
	return s
}

// traceHeader is the first line of the text format; bumping the version
// invalidates old files explicitly instead of misparsing them.
const traceHeader = "#iosig-trace v1"

// Write encodes the trace in the line-oriented text format:
// pid rank fd op offset size start end (whitespace-separated, one record
// per line, '#' comments ignored).
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for _, r := range t.Records {
		op := "r"
		if r.Op == device.Write {
			op = "w"
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %s %d %d %d %d\n",
			r.PID, r.Rank, r.FD, op, r.Offset, r.Size, int64(r.Start), int64(r.End)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == traceHeader {
				sawHeader = true
			}
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("trace: line %d: missing %q header", lineNo, traceHeader)
		}
		fields := strings.Fields(line)
		if len(fields) != 8 {
			return nil, fmt.Errorf("trace: line %d: want 8 fields, got %d", lineNo, len(fields))
		}
		var rec Record
		var err error
		if rec.PID, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("trace: line %d: pid: %w", lineNo, err)
		}
		if rec.Rank, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("trace: line %d: rank: %w", lineNo, err)
		}
		if rec.FD, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("trace: line %d: fd: %w", lineNo, err)
		}
		switch fields[3] {
		case "r":
			rec.Op = device.Read
		case "w":
			rec.Op = device.Write
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[3])
		}
		if rec.Offset, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: offset: %w", lineNo, err)
		}
		if rec.Size, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: size: %w", lineNo, err)
		}
		var ts int64
		if ts, err = strconv.ParseInt(fields[6], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: start: %w", lineNo, err)
		}
		rec.Start = sim.Time(ts)
		if ts, err = strconv.ParseInt(fields[7], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: end: %w", lineNo, err)
		}
		rec.End = sim.Time(ts)
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader && len(t.Records) == 0 && lineNo > 0 {
		return nil, fmt.Errorf("trace: missing %q header", traceHeader)
	}
	return t, nil
}
