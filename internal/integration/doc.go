// Package integration holds cross-package scenario tests: full
// trace→analyze→place→measure pipelines, failure injection (degraded
// servers), persistence round trips through the on-disk formats, and the
// multi-application workload separation the paper discusses in Section
// IV-D. The package itself exports nothing; all content lives in the
// test files.
package integration
