package integration

import (
	"bytes"
	"math/rand"
	"testing"

	"harl/internal/cluster"
	"harl/internal/harl"
	"harl/internal/ior"
	"harl/internal/layout"
	"harl/internal/mpiio"
	"harl/internal/trace"
)

// pipelineWorkload is the shared small IOR setup for pipeline tests.
func pipelineWorkload() ior.Config {
	return ior.Config{
		Ranks:        8,
		RanksPerNode: 2,
		RequestSize:  256 << 10,
		FileSize:     64 << 20,
		Random:       true,
		Seed:         17,
	}
}

// TestFullPipelinePersistedRST drives the complete three-phase lifecycle
// through the on-disk artifacts: an instrumented run collects a trace,
// the trace round-trips through the IOSIG text format, analysis produces
// an RST that round-trips through its format, and the placed file serves
// the workload with verified data integrity.
func TestFullPipelinePersistedRST(t *testing.T) {
	// Phase 1: traced run on the default layout.
	tb := cluster.MustNew(cluster.Default())
	w := mpiio.NewWorld(tb.FS, 8, 2)
	collector := trace.NewCollector()
	var traced *mpiio.TracingFile
	w.Run(func() {
		w.CreatePlain("app", layout.Fixed(6, 2, 64<<10), func(f *mpiio.PlainFile, err error) {
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			traced = w.Trace(f, collector)
		})
	})
	cfg := pipelineWorkload()
	if _, err := ior.Run(w, traced, cfg); err != nil {
		t.Fatal(err)
	}

	// Persist and reload the trace.
	var traceFile bytes.Buffer
	if err := collector.Trace().Write(&traceFile); err != nil {
		t.Fatal(err)
	}
	reloaded, err := trace.Read(&traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != collector.Trace().Len() {
		t.Fatalf("trace round trip lost records: %d vs %d", reloaded.Len(), collector.Trace().Len())
	}

	// Phase 2: calibrate + analyze, persist and reload the RST.
	params, err := tb.Calibrate(300)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := harl.Planner{Params: params, ChunkSize: 1 << 20}.Analyze(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	var rstFile bytes.Buffer
	if err := plan.RST.Write(&rstFile); err != nil {
		t.Fatal(err)
	}
	rst, err := harl.ReadRST(&rstFile)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 3: place on a fresh system and verify data through it.
	tb2 := cluster.MustNew(cluster.Default())
	w2 := mpiio.NewWorld(tb2.FS, 8, 2)
	payload := make([]byte, 2<<20)
	rand.New(rand.NewSource(99)).Read(payload)
	var got []byte
	w2.Run(func() {
		w2.CreateHARL("app", rst, func(f *mpiio.HARLFile, err error) {
			if err != nil {
				t.Fatalf("place: %v", err)
			}
			f.WriteAt(0, 12345, payload, func(error) {
				f.ReadAt(3, 12345, int64(len(payload)), func(data []byte, _ error) { got = data })
			})
		})
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("placed file corrupted data")
	}
}

// TestDegradedHServerHurtsButDoesNotBreak injects a 20x-slow HServer and
// checks that both the fixed and HARL layouts keep serving correctly,
// with throughput degraded.
func TestDegradedHServerHurtsButDoesNotBreak(t *testing.T) {
	cfg := pipelineWorkload()
	run := func(slow bool) ior.Result {
		tb := cluster.MustNew(cluster.Default())
		if slow {
			tb.FS.Servers()[0].SlowFactor = 20
		}
		w := mpiio.NewWorld(tb.FS, cfg.Ranks, cfg.RanksPerNode)
		var f *mpiio.PlainFile
		w.Run(func() {
			w.CreatePlain("f", layout.Fixed(6, 2, 64<<10), func(file *mpiio.PlainFile, err error) {
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				f = file
			})
		})
		res, err := ior.Run(w, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(false)
	degraded := run(true)
	if degraded.ReadMBs() >= healthy.ReadMBs() {
		t.Fatalf("degraded server did not hurt: %.1f vs %.1f MB/s", degraded.ReadMBs(), healthy.ReadMBs())
	}
	if degraded.ReadMBs() <= 0 {
		t.Fatal("degraded system stopped serving")
	}
}

// TestSSDOnlyLayoutImmuneToDegradedHServer: a {0, s} layout stores
// nothing on HServers, so a dying HServer must not affect it — the
// placement isolation HARL's SServer-only optima provide.
func TestSSDOnlyLayoutImmuneToDegradedHServer(t *testing.T) {
	cfg := pipelineWorkload()
	run := func(slow bool) ior.Result {
		tb := cluster.MustNew(cluster.Default())
		if slow {
			tb.FS.Servers()[0].SlowFactor = 50
		}
		w := mpiio.NewWorld(tb.FS, cfg.Ranks, cfg.RanksPerNode)
		var f *mpiio.PlainFile
		w.Run(func() {
			w.CreatePlain("f", layout.Striping{M: 6, N: 2, H: 0, S: 64 << 10},
				func(file *mpiio.PlainFile, err error) { f = file })
		})
		res, err := ior.Run(w, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(false)
	degraded := run(true)
	if degraded.ReadTime != healthy.ReadTime || degraded.WriteTime != healthy.WriteTime {
		t.Fatalf("SServer-only layout touched the degraded HServer: %v vs %v",
			degraded.ReadTime, healthy.ReadTime)
	}
}

// TestMultiApplicationSeparatePlans reproduces the Section IV-D
// discussion: two applications with very different request sizes run
// against the same hybrid PFS, each with its own traced workload and its
// own HARL plan on its own file. Both must beat their 64 KB-default
// counterparts.
func TestMultiApplicationSeparatePlans(t *testing.T) {
	appA := ior.Config{Ranks: 4, RanksPerNode: 2, RequestSize: 128 << 10, FileSize: 16 << 20, Random: true, Seed: 5}
	appB := ior.Config{Ranks: 4, RanksPerNode: 2, RequestSize: 1 << 20, FileSize: 32 << 20, Random: true, Seed: 6}

	tbCal := cluster.MustNew(cluster.Default())
	params, err := tbCal.Calibrate(300)
	if err != nil {
		t.Fatal(err)
	}
	planA, err := harl.Planner{Params: params, ChunkSize: 1 << 20}.Analyze(appA.Trace())
	if err != nil {
		t.Fatal(err)
	}
	planB, err := harl.Planner{Params: params, ChunkSize: 1 << 20}.Analyze(appB.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// The plans must differ: the workloads have different optima.
	pairA := planA.Regions[0].Stripes
	pairB := planB.Regions[0].Stripes
	if pairA == pairB {
		t.Logf("warning: both applications got %v; distinct optima expected", pairA)
	}

	// Run both apps back to back on one shared system (their files
	// coexist on the same servers), under default vs per-app HARL plans.
	type outcome struct{ readA, readB float64 }
	run := func(useHARL bool) outcome {
		tb := cluster.MustNew(cluster.Default())
		wA := mpiio.NewWorldNamed(tb.FS, "a", appA.Ranks, appA.RanksPerNode)
		wB := mpiio.NewWorldNamed(tb.FS, "b", appB.Ranks, appB.RanksPerNode)
		var fA, fB mpiio.PhantomFile
		wA.Run(func() {
			if useHARL {
				wA.CreateHARL("appA", &planA.RST, func(f *mpiio.HARLFile, err error) { fA = f })
				wB.CreateHARL("appB", &planB.RST, func(f *mpiio.HARLFile, err error) { fB = f })
			} else {
				wA.CreatePlain("appA", layout.Fixed(6, 2, 64<<10), func(f *mpiio.PlainFile, err error) { fA = f })
				wB.CreatePlain("appB", layout.Fixed(6, 2, 64<<10), func(f *mpiio.PlainFile, err error) { fB = f })
			}
		})
		resA, errA := ior.Run(wA, fA, appA)
		resB, errB := ior.Run(wB, fB, appB)
		if errA != nil || errB != nil {
			t.Fatalf("runs failed: %v, %v", errA, errB)
		}
		return outcome{readA: resA.ReadMBs(), readB: resB.ReadMBs()}
	}
	def := run(false)
	opt := run(true)
	if opt.readA <= def.readA || opt.readB <= def.readB {
		t.Fatalf("per-application HARL plans did not both win: A %.1f->%.1f, B %.1f->%.1f",
			def.readA, opt.readA, def.readB, opt.readB)
	}
}
