GO ?= go

# CHAOS_SEED picks the fault schedule the chaos suite injects on top of
# its built-in seeds; a red run is reproduced by re-running with the
# seed the failure printed.
CHAOS_SEED ?= 1

.PHONY: verify build test race bench vet chaos trace

# verify is the tier-1 gate: everything must pass before a commit lands.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) chaos
	$(MAKE) trace

# chaos runs the seeded fault-injection suite under the race detector:
# integrity under chaos, determinism across Parallelism, hedged-read
# tail-latency wins, and the migrate/pfs fault paths.
chaos:
	@CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run 'Chaos|Hedge|Fault|Flaky|Crash|Restripe|Straggle|Watchdog' ./internal/... \
		|| { echo "chaos suite failed; reproduce with: make chaos CHAOS_SEED=$(CHAOS_SEED)"; exit 1; }

# trace is the observability golden check: two same-seed instrumented
# runs must export byte-identical Chrome traces and metrics dumps.
trace:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/harlctl trace -quick -out $$tmp/a.json -metrics-out $$tmp/a.txt >/dev/null && \
	$(GO) run ./cmd/harlctl trace -quick -out $$tmp/b.json -metrics-out $$tmp/b.txt >/dev/null && \
	if cmp -s $$tmp/a.json $$tmp/b.json && cmp -s $$tmp/a.txt $$tmp/b.txt; then \
		echo "trace determinism check passed"; rm -rf $$tmp; \
	else \
		echo "trace determinism check failed: same-seed exports differ"; rm -rf $$tmp; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper figures; use BENCHFLAGS=-short for the
# reduced scale.
bench:
	$(GO) test -bench=. -benchmem $(BENCHFLAGS) ./...
