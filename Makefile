GO ?= go

# CHAOS_SEED picks the fault schedule the chaos suite injects on top of
# its built-in seeds; a red run is reproduced by re-running with the
# seed the failure printed.
CHAOS_SEED ?= 1

.PHONY: verify build test race bench vet chaos

# verify is the tier-1 gate: everything must pass before a commit lands.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) chaos

# chaos runs the seeded fault-injection suite under the race detector:
# integrity under chaos, determinism across Parallelism, hedged-read
# tail-latency wins, and the migrate/pfs fault paths.
chaos:
	@CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run 'Chaos|Hedge|Fault|Flaky|Crash|Restripe|Straggle|Watchdog' ./internal/... \
		|| { echo "chaos suite failed; reproduce with: make chaos CHAOS_SEED=$(CHAOS_SEED)"; exit 1; }

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper figures; use BENCHFLAGS=-short for the
# reduced scale.
bench:
	$(GO) test -bench=. -benchmem $(BENCHFLAGS) ./...
