GO ?= go

# CHAOS_SEED picks the fault schedule the chaos suite injects on top of
# its built-in seeds; a red run is reproduced by re-running with the
# seed the failure printed.
CHAOS_SEED ?= 1

# BENCH_FILE is the snapshot `make bench` writes; benchcheck ignores it
# and auto-discovers the newest committed BENCH_PR<N>.json instead.
BENCH_FILE ?= BENCH_PR10.json

.PHONY: verify build test race bench vet chaos trace monitor benchcheck enginediff repl slo doctor

# verify is the tier-1 gate: everything must pass before a commit lands.
# benchcheck is advisory (non-fatal): it flags benchmark drift but a
# legitimate behavior change just re-runs `make bench` to refresh the
# committed numbers.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) chaos
	$(MAKE) repl
	$(MAKE) trace
	$(MAKE) monitor
	$(MAKE) enginediff
	$(MAKE) slo
	$(MAKE) doctor
	@$(MAKE) benchcheck || echo "warning: benchmark drift (non-fatal); refresh $(BENCH_FILE) with 'make bench' if intended"

# monitor runs the online-monitor suite under the race detector plus the
# monitor-on/off differential proof: a monitored run must execute the
# exact event sequence of a bare one.
monitor:
	$(GO) test -race ./internal/monitor ./internal/obs
	$(GO) test -race -run 'DriftMonitorDifferential|MonitorMatchesRegistry|TracingDisabledDifferential' ./internal/experiments ./internal/mpiio

# enginediff is the timer-wheel acceptance proof: the wheel engine and
# the retained heap engine must fire the identical event sequence, both
# on synthetic schedules and replaying full IOR/chaos/drift scenarios,
# and the deterministic experiment fan-out must be byte-identical at
# every worker count.
enginediff:
	$(GO) test -race -run 'TestWheelHeapDifferential|TestEngineWheelHeap|TestRunParallel|TestParallelSeedSweep' ./internal/sim ./internal/experiments

# slo runs the telemetry suite under the race detector: the flight
# recorder and burn-rate engine units, the attached-pipeline
# differentials (telemetry must be a pure observer of IOR, chaos and
# drift), the double-crash alerting acceptance over seeds 1-3, and the
# slo/record/metrics -prom CLI smoke tests.
slo:
	$(GO) test -race ./internal/telemetry
	$(GO) test -race -run 'TestTelemetryAttached|TestSLO|TestRecord|TestMetricsProm|TestWriteProm' ./internal/experiments ./internal/obs ./cmd/harlctl

# doctor runs the diagnosis suite under the race detector: the sketch
# layer and anomaly-detector units, the straggler acceptance over seeds
# 1-3 with its fault-free control, the sketches-on/off differential
# proof (an attached run executes the exact event sequence of a bare
# one), and the doctor CLI golden.
doctor:
	$(GO) test -race ./internal/diagnose ./internal/obs
	$(GO) test -race -run 'TestDoctor|TestSketchAttached|TestFigDoctor|TestSketchFeedsFromServePath|TestQueueGaugesQuiesce' ./internal/experiments ./internal/pfs ./cmd/harlctl

# benchcheck compares fresh measurements against the newest committed
# snapshot (benchguard auto-discovers BENCH_PR<N>.json).
benchcheck:
	$(GO) run ./cmd/benchguard -check

# chaos runs the seeded fault-injection suite under the race detector:
# integrity under chaos, determinism across Parallelism, hedged-read
# tail-latency wins, and the migrate/pfs fault paths.
chaos:
	@CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -run 'Chaos|Hedge|Fault|Flaky|Crash|Restripe|Straggle|Watchdog' ./internal/... \
		|| { echo "chaos suite failed; reproduce with: make chaos CHAOS_SEED=$(CHAOS_SEED)"; exit 1; }

# repl runs the replication suite under the race detector: chain/quorum
# write integrity under replica-targeted crash schedules (seeds 1-3 x
# {crash, double-crash, recovery-overlap} x r in {2,3}), view changes
# and catch-up, the r=1 event-for-event differential against the legacy
# protocol, and the replica/view status CLI.
repl:
	$(GO) test -race -run 'Repl' ./internal/repl ./internal/pfs ./internal/faults ./internal/harl ./internal/cost ./internal/mpiio ./internal/experiments ./cmd/harlctl

# trace is the observability golden check: two same-seed instrumented
# runs must export byte-identical Chrome traces and metrics dumps.
trace:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/harlctl trace -quick -out $$tmp/a.json -metrics-out $$tmp/a.txt >/dev/null && \
	$(GO) run ./cmd/harlctl trace -quick -out $$tmp/b.json -metrics-out $$tmp/b.txt >/dev/null && \
	if cmp -s $$tmp/a.json $$tmp/b.json && cmp -s $$tmp/a.txt $$tmp/b.txt; then \
		echo "trace determinism check passed"; rm -rf $$tmp; \
	else \
		echo "trace determinism check failed: same-seed exports differ"; rm -rf $$tmp; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper figures and refreshes the committed
# benchmark snapshot; use BENCHFLAGS=-short for the reduced scale.
bench:
	$(GO) test -bench=. -benchmem $(BENCHFLAGS) ./...
	$(GO) run ./cmd/benchguard -write -file $(BENCH_FILE)
