// Command btiosim runs the BTIO benchmark kernel on the simulated hybrid
// parallel file system.
//
// Usage:
//
//	btiosim [-class A] [-ranks 16] [-layout fixed:64K | -layout harl] [-seed 1]
//
// The harl layout traces an instrumented first run on the default 64 KB
// layout, analyzes it, and measures the optimized placement — the full
// three-phase pipeline of the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harl/internal/btio"
	"harl/internal/cluster"
	"harl/internal/harl"
	"harl/internal/layout"
	"harl/internal/mpiio"
	"harl/internal/trace"
)

func main() {
	class := flag.String("class", "W", "BTIO class: S, W or A")
	ranks := flag.Int("ranks", 16, "processes (must be a perfect square)")
	nodes := flag.Int("nodes", 8, "compute nodes")
	layoutSpec := flag.String("layout", "fixed:64K", "fixed:SIZE | harl")
	subtype := flag.String("subtype", "full", "I/O subtype: full (collective) or simple (independent)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var cfg btio.Config
	switch strings.ToUpper(*class) {
	case "S":
		cfg = btio.ClassS(*ranks)
	case "W":
		cfg = btio.ClassW(*ranks)
	case "A":
		cfg = btio.ClassA(*ranks)
	default:
		fmt.Fprintf(os.Stderr, "btiosim: unknown class %q\n", *class)
		os.Exit(2)
	}
	cfg.RanksPerNode = *ranks / *nodes
	if cfg.RanksPerNode < 1 {
		cfg.RanksPerNode = 1
	}
	switch *subtype {
	case "full":
		cfg.Subtype = btio.Full
	case "simple":
		cfg.Subtype = btio.Simple
	default:
		fmt.Fprintf(os.Stderr, "btiosim: unknown subtype %q\n", *subtype)
		os.Exit(2)
	}
	clusterCfg := cluster.Default()
	clusterCfg.Seed = *seed

	res, label, err := run(clusterCfg, cfg, *layoutSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btiosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("BTIO class %s (%s subtype), %d procs, layout %s\n", strings.ToUpper(*class), cfg.Subtype, cfg.Ranks, label)
	fmt.Printf("  snapshots: %d x %.1f MB\n", cfg.Snapshots(), float64(cfg.SnapshotBytes())/(1<<20))
	fmt.Printf("  write: %8.1f MB/s   read: %8.1f MB/s   aggregate: %8.1f MB/s\n",
		res.WriteMBs(), res.ReadMBs(), res.AggregateMBs())
}

func run(clusterCfg cluster.Config, cfg btio.Config, spec string) (btio.Result, string, error) {
	if strings.HasPrefix(spec, "fixed:") {
		var sz int64
		s := strings.TrimSuffix(strings.TrimPrefix(spec, "fixed:"), "K")
		if _, err := fmt.Sscanf(s, "%d", &sz); err != nil {
			return btio.Result{}, "", fmt.Errorf("bad layout %q", spec)
		}
		sz <<= 10
		res, err := runFixed(clusterCfg, cfg, sz)
		return res, fmt.Sprintf("%dK fixed", sz>>10), err
	}
	if spec != "harl" {
		return btio.Result{}, "", fmt.Errorf("unknown layout %q", spec)
	}

	// Tracing phase on the default layout.
	tb, err := cluster.New(clusterCfg)
	if err != nil {
		return btio.Result{}, "", err
	}
	w := mpiio.NewWorld(tb.FS, cfg.Ranks, cfg.RanksPerNode)
	col := trace.NewCollector()
	var traced *mpiio.TracingFile
	var createErr error
	w.Run(func() {
		w.CreatePlain("btio", layout.Fixed(clusterCfg.HServers, clusterCfg.SServers, 64<<10),
			func(f *mpiio.PlainFile, err error) {
				if err != nil {
					createErr = err
					return
				}
				traced = w.Trace(f, col)
			})
	})
	if createErr != nil {
		return btio.Result{}, "", createErr
	}
	tcfg := cfg
	tcfg.Verify = false
	if _, err := btio.Run(w, traced, tcfg); err != nil {
		return btio.Result{}, "", err
	}

	// Analysis phase.
	params, err := tb.Calibrate(1000)
	if err != nil {
		return btio.Result{}, "", err
	}
	plan, err := harl.Planner{Params: params, ChunkSize: maxI64(cfg.TotalBytes()/256, 1<<20)}.Analyze(col.Trace())
	if err != nil {
		return btio.Result{}, "", err
	}

	// Placing phase + measured run.
	tb2, err := cluster.New(clusterCfg)
	if err != nil {
		return btio.Result{}, "", err
	}
	w2 := mpiio.NewWorld(tb2.FS, cfg.Ranks, cfg.RanksPerNode)
	var f *mpiio.HARLFile
	w2.Run(func() {
		w2.CreateHARL("btio", &plan.RST, func(file *mpiio.HARLFile, err error) { f, createErr = file, err })
	})
	if createErr != nil {
		return btio.Result{}, "", createErr
	}
	res, err := btio.Run(w2, f, cfg)
	return res, fmt.Sprintf("harl (%d regions)", len(plan.RST.Entries)), err
}

func runFixed(clusterCfg cluster.Config, cfg btio.Config, stripe int64) (btio.Result, error) {
	tb, err := cluster.New(clusterCfg)
	if err != nil {
		return btio.Result{}, err
	}
	w := mpiio.NewWorld(tb.FS, cfg.Ranks, cfg.RanksPerNode)
	var f *mpiio.PlainFile
	var createErr error
	w.Run(func() {
		w.CreatePlain("btio", layout.Fixed(clusterCfg.HServers, clusterCfg.SServers, stripe),
			func(file *mpiio.PlainFile, err error) { f, createErr = file, err })
	})
	if createErr != nil {
		return btio.Result{}, createErr
	}
	return btio.Run(w, f, cfg)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
