// Command experiments regenerates the paper's evaluation figures on the
// simulated testbed and prints each as a text table.
//
// Usage:
//
//	experiments [-quick] [-fig 7] [-seed N] [-chaos-seed N] [-parallel N]
//	            [-max-retries N] [-timeout D] [-backoff D] [-hedge-after D]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// Without -fig, every figure in the registry (1a, 1b, 7-12, the
// ablations, threetier, baselines, chaos, hedge, breakdown, drift,
// critpath, scalehuge, slo, doctor) runs in registry order. -parallel fans the
// selected figures out over N workers (0 = GOMAXPROCS, 1 = serial);
// each figure is an independent simulated world, so the printed tables
// are byte-identical at any worker count. -chaos-seed replays an exact
// fault schedule; the retry knobs override the client recovery policy
// the chaos figures use. -cpuprofile/-memprofile write pprof profiles
// of the whole regeneration run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"harl/internal/experiments"
	"harl/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (128 MB file, class W BTIO)")
	fig := flag.String("fig", "", "single figure to run (see registry list in the doc comment)")
	seed := flag.Int64("seed", 1, "simulation seed")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed for the chaos figures")
	parallel := flag.Int("parallel", 1, "figure fan-out workers (0 = GOMAXPROCS, 1 = serial)")
	maxRetries := flag.Int("max-retries", 0, "override the client retry budget (0 = default)")
	timeout := flag.Duration("timeout", 0, "override the per-request deadline (0 = default)")
	backoff := flag.Duration("backoff", 0, "override the retry backoff base (0 = default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "override the hedged-read threshold (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	opts.ChaosSeed = *chaosSeed
	if *maxRetries > 0 {
		opts.MaxRetries = *maxRetries
	}
	if *timeout > 0 {
		opts.RequestTimeout = sim.Duration(*timeout)
	}
	if *backoff > 0 {
		opts.Backoff = sim.Duration(*backoff)
	}
	if *hedgeAfter > 0 {
		opts.HedgeAfter = sim.Duration(*hedgeAfter)
	}

	figures := experiments.Figures()
	if *fig != "" {
		f, ok := experiments.FigureByName(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		figures = []experiments.Figure{f}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	tables, err := experiments.RunParallel(opts, figures, *parallel)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		exit(1, *cpuprofile, *memprofile)
	}
	for i, table := range tables {
		fmt.Println(table)
		fmt.Printf("(figure %s)\n\n", figures[i].Name)
	}
	fmt.Printf("(%d figure(s) regenerated in %v)\n", len(tables), elapsed.Round(time.Millisecond))
	writeMemProfile(*memprofile)
}

// exit flushes any active profiles before terminating, since deferred
// handlers do not run through os.Exit.
func exit(code int, cpuprofile, memprofile string) {
	if cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	writeMemProfile(memprofile)
	os.Exit(code)
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	}
}
