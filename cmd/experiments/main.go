// Command experiments regenerates the paper's evaluation figures on the
// simulated testbed and prints each as a text table.
//
// Usage:
//
//	experiments [-quick] [-fig 7] [-seed N] [-chaos-seed N]
//	            [-max-retries N] [-timeout D] [-backoff D] [-hedge-after D]
//
// Without -fig, every figure (1a, 1b, 7, 8, 9, 10, 11, 12), the three
// ablation studies (ablation-division, ablation-model,
// ablation-threshold), the fault-injection figures (chaos, hedge), the
// trace breakdown, the drift-monitor scenario (drift) and the
// critical-path/what-if validation (critpath) run in order. -chaos-seed
// replays an exact fault schedule; the retry knobs override the client
// recovery policy the chaos figures use.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"harl/internal/experiments"
	"harl/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (128 MB file, class W BTIO)")
	fig := flag.String("fig", "", "single figure to run: 1a, 1b, 7, 8, 9, 10, 11 or 12")
	seed := flag.Int64("seed", 1, "simulation seed")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed for the chaos figures")
	maxRetries := flag.Int("max-retries", 0, "override the client retry budget (0 = default)")
	timeout := flag.Duration("timeout", 0, "override the per-request deadline (0 = default)")
	backoff := flag.Duration("backoff", 0, "override the retry backoff base (0 = default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "override the hedged-read threshold (0 = default)")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	opts.ChaosSeed = *chaosSeed
	if *maxRetries > 0 {
		opts.MaxRetries = *maxRetries
	}
	if *timeout > 0 {
		opts.RequestTimeout = sim.Duration(*timeout)
	}
	if *backoff > 0 {
		opts.Backoff = sim.Duration(*backoff)
	}
	if *hedgeAfter > 0 {
		opts.HedgeAfter = sim.Duration(*hedgeAfter)
	}

	figures := []struct {
		name string
		run  func(experiments.Options) (*experiments.Table, error)
	}{
		{"1a", experiments.Fig1a},
		{"1b", experiments.Fig1b},
		{"7", experiments.Fig7},
		{"8", experiments.Fig8},
		{"9", experiments.Fig9},
		{"10", experiments.Fig10},
		{"11", experiments.Fig11},
		{"12", experiments.Fig12},
		{"ablation-division", experiments.AblationRegionDivision},
		{"ablation-model", experiments.AblationCostModel},
		{"ablation-threshold", experiments.AblationThreshold},
		{"threetier", experiments.ThreeTier},
		{"baselines", experiments.BaselineComparison},
		{"chaos", experiments.FigChaos},
		{"hedge", experiments.FigHedge},
		{"breakdown", experiments.FigTraceBreakdown},
		{"drift", experiments.FigDrift},
		{"critpath", experiments.FigCritPath},
	}

	ran := 0
	for _, f := range figures {
		if *fig != "" && *fig != f.name {
			continue
		}
		start := time.Now()
		table, err := f.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(figure %s regenerated in %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
