// Command experiments regenerates the paper's evaluation figures on the
// simulated testbed and prints each as a text table.
//
// Usage:
//
//	experiments [-quick] [-fig 7] [-seed N]
//
// Without -fig, every figure (1a, 1b, 7, 8, 9, 10, 11, 12) and the three
// ablation studies (ablation-division, ablation-model,
// ablation-threshold) run in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"harl/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (128 MB file, class W BTIO)")
	fig := flag.String("fig", "", "single figure to run: 1a, 1b, 7, 8, 9, 10, 11 or 12")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed

	figures := []struct {
		name string
		run  func(experiments.Options) (*experiments.Table, error)
	}{
		{"1a", experiments.Fig1a},
		{"1b", experiments.Fig1b},
		{"7", experiments.Fig7},
		{"8", experiments.Fig8},
		{"9", experiments.Fig9},
		{"10", experiments.Fig10},
		{"11", experiments.Fig11},
		{"12", experiments.Fig12},
		{"ablation-division", experiments.AblationRegionDivision},
		{"ablation-model", experiments.AblationCostModel},
		{"ablation-threshold", experiments.AblationThreshold},
		{"threetier", experiments.ThreeTier},
		{"baselines", experiments.BaselineComparison},
	}

	ran := 0
	for _, f := range figures {
		if *fig != "" && *fig != f.name {
			continue
		}
		start := time.Now()
		table, err := f.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(figure %s regenerated in %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
