// Command harlctl drives HARL's off-line analysis pipeline on trace
// files: summarize a trace, divide it into regions, compute the optimal
// Region Stripe Table, and inspect RST files.
//
// Usage:
//
//	harlctl summary  -trace ior.trace
//	harlctl divide   -trace ior.trace [-threshold 100] [-chunk 64M]
//	harlctl optimize -trace ior.trace -out file.rst [-hservers 6] [-sservers 2] [-probes 1000] [-profile]
//	harlctl show     -rst file.rst
//	harlctl chaos    [-chaos-seed N] [-max-retries N] [-timeout D] [-backoff D] [-hedge-after D]
//	harlctl trace    [-out trace.json] [-metrics-out metrics.txt] [-seed N] [-quick]
//	harlctl metrics  [-seed N] [-quick]
//	harlctl monitor  [-seed N] [-quick] [-shift=false]
//	harlctl health   [-seed N] [-quick] [-shift=false] [-repl]
//	harlctl critpath [-seed N] [-quick] [-out highlighted.json]
//	harlctl whatif   [-seed N] [-quick] [-factor 2] [-drift]
//	harlctl slo      [-seed N] [-chaos-seed N] [-shape double-crash] [-bundle-dir DIR] [-quick]
//	harlctl record   [-seed N] [-bundle-dir bundles] [-quick]
//	harlctl doctor   [-seed N] [-quick] [-control]
//
// The global -cpuprofile FILE and -memprofile FILE flags go before the
// subcommand (harlctl -cpuprofile cpu.out trace ...) and write pprof
// profiles covering the whole invocation; see README "Profiling the
// simulator".
//
// optimize calibrates the cost model against the default simulated device
// profiles (the stand-in for probing one real server of each class);
// -profile prints where the Analysis Phase spent its search budget.
// chaos runs the fault-injection scenario on the simulated testbed:
// IOR-style traffic through the seeded fault schedule, with the given
// client recovery policy, plus the hedged-read straggler scan. The same
// -chaos-seed always replays the same fault sequence.
// trace runs the instrumented IOR baseline through the full HARL pipeline
// and exports the span trace as Chrome trace_event JSON — open the file
// at https://ui.perfetto.dev to see every request's journey client →
// network → disk on the virtual timeline. metrics runs the same workload
// and dumps the metrics registry as text. Both are deterministic: the
// same seed always produces byte-identical output.
// monitor runs the drift scenario — a two-region workload whose second
// region switches request size mid-run (suppress with -shift=false) —
// with the online region-workload monitor attached, and prints its
// layout-health report: per-region drift scores, staleness verdicts and
// replan advice. health is the scriptable variant: one line and exit
// code 0 (on plan) or 1 (some region stale); health -repl reports
// per-region replica/view status (views, serving members, catch-up lag)
// from the replicated demo scenario instead, with exit code 1 if any
// replica group has lost every member.
// slo runs the replicated chaos scenario with the always-on telemetry
// pipeline attached (flight recorder, SLO burn-rate engine, incident
// bundles) and exits 1 if any burn-rate alert fired; record runs the
// fault-free scenario and freezes one manual bundle of the recent past.
// doctor runs the straggler-diagnosis scenario — steady probe traffic
// with the per-server tail-latency sketches and the anomaly detector
// attached, plus (unless -control) a seeded mid-run service-time
// slowdown on one HDD server — and prints the ranked root-cause report
// with the region × server skew heatmap. Exit code 1 when a straggler
// is confirmed, 0 when the run diagnoses clean, so scripts can gate on
// it like health.
// critpath runs the instrumented IOR baseline, extracts the critical
// path from the trace, and prints the blame table — virtual time on the
// blocking chain by kind, server, tier, region and phase; -out also
// exports the trace with the path as a highlight track. whatif replays
// the identical seeded scenario once per counterfactual (each tier,
// the interconnect, the most-blamed server sped up by -factor) and
// prints the measured makespan deltas, ranked; -drift profiles the
// drift scenario's post-shift window instead, including the advisor's
// restripe recommendation as a candidate.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"harl/internal/cost"
	"harl/internal/device"
	"harl/internal/diagnose"
	"harl/internal/experiments"
	"harl/internal/harl"
	"harl/internal/netsim"
	"harl/internal/region"
	"harl/internal/sim"
	"harl/internal/trace"
)

func main() {
	// Global flags precede the subcommand; flag parsing stops at the
	// first non-flag argument, which is the subcommand itself.
	global := flag.NewFlagSet("harlctl", flag.ExitOnError)
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memprofile := global.String("memprofile", "", "write a heap profile to this file on exit")
	global.Parse(os.Args[1:])

	cmd, args := "", []string(nil)
	if rest := global.Args(); len(rest) >= 1 {
		cmd, args = rest[0], rest[1:]
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harlctl: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "harlctl: %v\n", err)
			os.Exit(1)
		}
	}

	err := dispatch(cmd, args)

	// Flush profiles before any os.Exit path below.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "harlctl: %v\n", ferr)
		} else {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintf(os.Stderr, "harlctl: %v\n", werr)
			}
			f.Close()
		}
	}

	var code exitCode
	if errors.As(err, &code) {
		// The command already printed its verdict; the code is the
		// scriptable result (health's stale=1, usage=2).
		os.Exit(int(code))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "harlctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// exitCode is an error carrying a bare process exit status whose
// explanation is already on the output.
type exitCode int

func (e exitCode) Error() string { return fmt.Sprintf("exit status %d", int(e)) }

// dispatch routes one subcommand; tests drive it directly.
func dispatch(cmd string, args []string) error {
	switch cmd {
	case "summary":
		return cmdSummary(args)
	case "divide":
		return cmdDivide(args)
	case "optimize":
		return cmdOptimize(args)
	case "show":
		return cmdShow(args)
	case "chaos":
		return cmdChaos(args)
	case "trace":
		return cmdTrace(args)
	case "metrics":
		return cmdMetrics(args)
	case "monitor":
		return cmdMonitor(args)
	case "health":
		return cmdHealth(args)
	case "critpath":
		return cmdCritPath(args)
	case "whatif":
		return cmdWhatIf(args)
	case "slo":
		return cmdSLO(args)
	case "record":
		return cmdRecord(args)
	case "doctor":
		return cmdDoctor(args)
	}
	return usage()
}

func usage() error {
	fmt.Fprintln(os.Stderr, "usage: harlctl {summary|divide|optimize|show|chaos|trace|metrics|monitor|health|critpath|whatif|slo|record|doctor} [flags]")
	return exitCode(2)
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("-trace is required")
	}
	tr, err := loadTrace(*path)
	if err != nil {
		return err
	}
	s := tr.Summarize()
	fmt.Printf("requests:   %d (%d reads, %d writes)\n", s.Requests, s.Reads, s.Writes)
	fmt.Printf("bytes:      %d (%d read, %d written)\n", s.Bytes, s.BytesRead, s.BytesWrite)
	fmt.Printf("sizes:      min %d  avg %.0f  max %d\n", s.MinSize, s.AvgSize, s.MaxSize)
	fmt.Printf("extent:     %d bytes\n", s.MaxOffset)
	fmt.Printf("open files: %d\n", s.DistinctFDs)
	return nil
}

func cmdDivide(args []string) error {
	fs := flag.NewFlagSet("divide", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	threshold := fs.Float64("threshold", region.DefaultThreshold, "CV-change threshold percent")
	chunk := fs.Int64("chunk", region.DefaultChunkSize, "fixed-division chunk bounding the region count")
	adaptive := fs.Bool("adaptive", true, "auto-raise the threshold to bound the region count")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("-trace is required")
	}
	tr, err := loadTrace(*path)
	if err != nil {
		return err
	}
	tr.SortByOffset()
	var regions []region.Region
	used := *threshold
	if *adaptive {
		regions, used = region.DivideAdaptive(tr.Records, *chunk, 0)
	} else {
		regions = region.Divide(tr.Records, *threshold, 0)
	}
	fmt.Printf("%d regions (threshold %.0f%%):\n", len(regions), used)
	for i, r := range regions {
		fmt.Printf("  %3d: %v\n", i, r)
	}
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	out := fs.String("out", "", "output RST file (required)")
	hservers := fs.Int("hservers", 6, "HDD servers")
	sservers := fs.Int("sservers", 2, "SSD servers")
	probes := fs.Int("probes", 1000, "calibration probes per device/op/size")
	chunk := fs.Int64("chunk", region.DefaultChunkSize, "region-count bound chunk")
	step := fs.Int64("step", harl.DefaultStep, "Algorithm 2 grid step")
	tiers := fs.Bool("tiers", false, "three-tier mode: hservers HDDs + 1 SATA SSD + 1 PCIe SSD, tiered RST output")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS; the plan is identical at every setting)")
	profile := fs.Bool("profile", false, "print the Analysis Phase search profile (two-tier mode only)")
	fs.Parse(args)
	if *path == "" || *out == "" {
		return fmt.Errorf("-trace and -out are required")
	}
	tr, err := loadTrace(*path)
	if err != nil {
		return err
	}
	if *tiers {
		return optimizeTiered(tr, *out, *hservers, *probes, *chunk, *step)
	}
	params, err := cost.Calibrate(device.DefaultHDD(), device.DefaultSSD(), netsim.GigabitEthernet(),
		*hservers, *sservers, *probes, 1)
	if err != nil {
		return err
	}
	pl := harl.Planner{Params: params, ChunkSize: *chunk, Step: *step, Parallelism: *parallel}
	if *profile {
		pl.Profile = &harl.SearchProfile{}
	}
	plan, err := pl.Analyze(tr)
	if err != nil {
		return err
	}
	if pl.Profile != nil {
		if _, err := pl.Profile.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := plan.RST.Write(f); err != nil {
		return err
	}
	fmt.Printf("threshold used: %.0f%%\n", plan.Threshold)
	for i, r := range plan.Regions {
		fmt.Printf("  region %3d: [%d,%d) avg %.0fB  stripes %v  writes %.0f%%\n",
			i, r.Offset, r.End, r.AvgSize, r.Stripes, r.WriteMix*100)
	}
	fmt.Printf("RST with %d entries written to %s\n", len(plan.RST.Entries), *out)
	return nil
}

// optimizeTiered is the -tiers variant of cmdOptimize: a three-profile
// system (hservers HDDs + one SATA SSD + one PCI-E SSD) analyzed with
// the multi-tier model and optimizer.
func optimizeTiered(tr *trace.Trace, out string, hservers, probes int, chunk, step int64) error {
	profiles := []device.Profile{device.DefaultHDD(), device.DefaultSATASSD(), device.DefaultSSD()}
	counts := []int{hservers, 1, 1}
	params, err := cost.CalibrateTiers(profiles, counts, netsim.GigabitEthernet(), probes, 1)
	if err != nil {
		return err
	}
	plan, err := harl.TieredPlanner{Params: params, ChunkSize: chunk, Step: step}.Analyze(tr)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := plan.RST.Write(f); err != nil {
		return err
	}
	fmt.Printf("threshold used: %.0f%%\n", plan.Threshold)
	for i, e := range plan.RST.Entries {
		fmt.Printf("  region %3d: [%d,%d) stripes %v\n", i, e.Offset, e.End, e.Stripes)
	}
	fmt.Printf("tiered RST with %d entries written to %s\n", len(plan.RST.Entries), out)
	return nil
}

// cmdChaos runs the fault-injection figures on the simulated testbed,
// mirroring how -parallel threads through optimize: the knobs map onto
// experiments.Options and the seed identifies the fault schedule.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	chaosSeed := fs.Int64("chaos-seed", 1, "fault-schedule seed (same seed replays the same faults)")
	seed := fs.Int64("seed", 1, "simulation seed")
	maxRetries := fs.Int("max-retries", 0, "client retry budget (0 = default)")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = default)")
	backoff := fs.Duration("backoff", 0, "retry backoff base (0 = default)")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedged-read threshold (0 = default)")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	opts.ChaosSeed = *chaosSeed
	opts.Parallelism = *parallel
	if *maxRetries > 0 {
		opts.MaxRetries = *maxRetries
	}
	if *timeout > 0 {
		opts.RequestTimeout = sim.Duration(*timeout)
	}
	if *backoff > 0 {
		opts.Backoff = sim.Duration(*backoff)
	}
	if *hedgeAfter > 0 {
		opts.HedgeAfter = sim.Duration(*hedgeAfter)
	}

	for _, run := range []func(experiments.Options) (*experiments.Table, error){
		experiments.FigChaos, experiments.FigHedge,
	} {
		table, err := run(opts)
		if err != nil {
			return fmt.Errorf("chaos seed %d: %w", *chaosSeed, err)
		}
		fmt.Println(table)
	}
	return nil
}

// traceOptions maps the shared trace/metrics flags onto experiment
// options.
func traceOptions(seed int64, quick bool, parallel int) experiments.Options {
	opts := experiments.DefaultOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = seed
	opts.Parallelism = parallel
	return opts
}

// cmdTrace runs the instrumented IOR baseline and exports the span trace
// as Chrome trace_event JSON for Perfetto.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("out", "trace.json", "output Chrome trace_event JSON (open at ui.perfetto.dev)")
	metricsOut := fs.String("metrics-out", "", "also dump the metrics registry to this file")
	seed := fs.Int64("seed", 1, "simulation seed (same seed, byte-identical trace)")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	run, err := experiments.TraceIOR(traceOptions(*seed, *quick, *parallel))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := run.WriteChrome(f); err != nil {
		return err
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		defer mf.Close()
		if err := run.WriteMetrics(mf); err != nil {
			return err
		}
	}
	fmt.Printf("ior: write %.1f MB/s  read %.1f MB/s  (%d regions, ended at %v)\n",
		run.Result.WriteMBs(), run.Result.ReadMBs(), len(run.Plan.RST.Entries), run.End)
	fmt.Printf("%d spans written to %s — open at https://ui.perfetto.dev\n", run.Tracer.Len(), *out)
	return nil
}

// cmdMetrics runs the same instrumented workload and dumps the metrics
// registry — human-readable text by default, Prometheus exposition
// format with -prom. Either way the bytes are deterministic per seed.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	prom := fs.Bool("prom", false, "export in Prometheus text exposition format")
	fs.Parse(args)

	run, err := experiments.TraceIOR(traceOptions(*seed, *quick, *parallel))
	if err != nil {
		return err
	}
	if *prom {
		return run.Metrics.WriteProm(os.Stdout, run.End)
	}
	return run.WriteMetrics(os.Stdout)
}

// cmdSLO runs the replicated chaos scenario with the always-on telemetry
// pipeline attached — flight recorder, SLO burn-rate engine, incident
// bundles — and reports every alert the burn-rate windows fired. Exit
// code 0 means every objective held; 1 means at least one alert fired
// (with -bundle-dir, each alert's incident bundle is on disk).
func cmdSLO(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault-schedule seed")
	shape := fs.String("shape", "double-crash", "fault shape: crash, double-crash or recovery-overlap")
	bundleDir := fs.String("bundle-dir", "", "write incident bundles under this directory")
	quick := fs.Bool("quick", false, "run at reduced scale (faults may miss the shorter traffic)")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	var picked experiments.ReplShape
	for _, s := range experiments.ReplShapes() {
		if string(s) == *shape {
			picked = s
		}
	}
	if picked == "" {
		return fmt.Errorf("unknown -shape %q (want crash, double-crash or recovery-overlap)", *shape)
	}

	opts := traceOptions(*seed, *quick, *parallel)
	opts.ChaosSeed = *chaosSeed
	run, err := experiments.RunSLO(opts, picked, *bundleDir)
	if err != nil {
		return err
	}
	fmt.Printf("slo %s: %d acked, %d failed, %d promotions, %d catch-up records\n",
		picked, run.Result.Acked, run.Result.Failed,
		run.Result.Repl.Promotions, run.Result.Repl.CatchUpRecords)
	fmt.Printf("recorder: %d spans held across %d tracks (%d captured, %d evicted)\n",
		run.Recorder.Held, run.Recorder.Tracks, run.Recorder.Captured, run.Recorder.Evicted)
	for _, a := range run.Alerts {
		fmt.Printf("ALERT %s\n", a.String())
	}
	for _, b := range run.Bundles {
		loc := b.Dir()
		if *bundleDir != "" {
			loc = *bundleDir + "/" + loc
		}
		fmt.Printf("bundle: %s (%d spans)\n", loc, len(b.Spans))
	}
	if n := len(run.Alerts); n > 0 {
		fmt.Printf("SLO BURN: %d alerts fired\n", n)
		return exitCode(1)
	}
	fmt.Println("slo ok: every objective held")
	return nil
}

// cmdRecord runs the fault-free replicated scenario with the flight
// recorder attached and freezes one manual incident bundle at run end —
// "dump the recent past" with no alert required.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	bundleDir := fs.String("bundle-dir", "bundles", "write the bundle under this directory")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	opts := traceOptions(*seed, *quick, *parallel)
	run, bundle, err := experiments.RunRecord(opts, *bundleDir)
	if err != nil {
		return err
	}
	fmt.Print(bundle.Summary())
	fmt.Printf("recorder: %d spans held across %d tracks (%d captured, %d evicted)\n",
		run.Recorder.Held, run.Recorder.Tracks, run.Recorder.Captured, run.Recorder.Evicted)
	fmt.Printf("bundle written to %s/%s\n", *bundleDir, bundle.Dir())
	return nil
}

// monitorRun executes the drift scenario with the online monitor
// attached; shift selects drifting vs plan-faithful traffic.
func monitorRun(fs *flag.FlagSet, args []string) (*experiments.DriftRun, error) {
	seed := fs.Int64("seed", 1, "simulation seed")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	shift := fs.Bool("shift", true, "shift the workload mid-run (false = plan-faithful control)")
	fs.Parse(args)
	return experiments.RunDrift(traceOptions(*seed, *quick, *parallel), *shift)
}

// cmdMonitor runs the monitored drift scenario and prints the online
// monitor's layout-health report: per-region drift state and replan
// advice.
func cmdMonitor(args []string) error {
	run, err := monitorRun(flag.NewFlagSet("monitor", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	if err := run.Report.WriteText(os.Stdout); err != nil {
		return err
	}
	if lat := run.DetectionLatency(); lat >= 0 {
		fmt.Printf("shift at %v, detected %v later\n", run.ShiftAt, lat)
	}
	return nil
}

// cmdHealth is the scriptable variant: one status line, exit code 0 when
// every region is still on plan and 1 when any region is stale. With
// -repl it instead reports per-region replica/view status from the
// replicated demo scenario (a crashed primary mid-write): exit code 0
// while every replica group still has a serving member, 1 otherwise.
func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	replMode := fs.Bool("repl", false, "report per-region replica/view status instead of layout drift")
	seed := fs.Int64("seed", 1, "simulation seed")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	shift := fs.Bool("shift", true, "shift the workload mid-run (false = plan-faithful control)")
	fs.Parse(args)

	if *replMode {
		rep, err := experiments.RunReplStatus(traceOptions(*seed, *quick, *parallel))
		if err != nil {
			return err
		}
		if err := rep.WriteText(os.Stdout); err != nil {
			return err
		}
		if n := rep.Unavailable(); n > 0 {
			fmt.Printf("UNAVAILABLE: %d replica groups have no serving member\n", n)
			return exitCode(1)
		}
		fmt.Println("available: every replica group has a serving member")
		return nil
	}

	run, err := experiments.RunDrift(traceOptions(*seed, *quick, *parallel), *shift)
	if err != nil {
		return err
	}
	stale := 0
	for _, r := range run.Report.Regions {
		if r.Stale {
			stale++
		}
	}
	if stale > 0 {
		fmt.Printf("STALE: %d of %d regions drifted off plan (%d advice entries)\n",
			stale, len(run.Report.Regions), len(run.Report.Advice))
		return exitCode(1)
	}
	fmt.Printf("healthy: %d regions on plan across %d windows\n",
		len(run.Report.Regions), run.Report.Windows)
	return nil
}

// cmdDoctor runs the straggler-diagnosis scenario and prints the ranked
// root-cause report; exit code 1 when a straggler is confirmed.
func cmdDoctor(args []string) error {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	control := fs.Bool("control", false, "fault-free control run (no seeded straggle)")
	fs.Parse(args)

	run, err := experiments.RunDoctor(traceOptions(*seed, *quick, *parallel), !*control)
	if err != nil {
		return err
	}
	fmt.Print(run.Report.Render())
	if n := len(run.Report.Confirmed(diagnose.CauseStraggle)); n > 0 {
		if run.DetectSeconds >= 0 {
			fmt.Printf("CONFIRMED: %d straggler(s); detected %.0fms after injection\n",
				n, run.DetectSeconds*1e3)
		} else {
			fmt.Printf("CONFIRMED: %d straggler(s)\n", n)
		}
		return exitCode(1)
	}
	fmt.Println("clean: no straggler confirmed")
	return nil
}

// cmdCritPath extracts the critical path from the instrumented IOR
// baseline and prints the blame table; -out exports the trace with the
// path as a highlight track for Perfetto.
func cmdCritPath(args []string) error {
	fs := flag.NewFlagSet("critpath", flag.ExitOnError)
	out := fs.String("out", "", "also export the trace with the critical-path highlight track to this file")
	seed := fs.Int64("seed", 1, "simulation seed (same seed, identical path)")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	run, err := experiments.TraceIOR(traceOptions(*seed, *quick, *parallel))
	if err != nil {
		return err
	}
	cp, err := run.CritPath()
	if err != nil {
		return err
	}
	if err := cp.Blame.WriteText(os.Stdout); err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := run.Tracer.WriteChromeWith(f, cp.HighlightSpans()); err != nil {
			return err
		}
		fmt.Printf("highlighted trace written to %s — open at https://ui.perfetto.dev\n", *out)
	}
	return nil
}

// cmdWhatIf measures ranked counterfactuals by exact replay: the IOR
// baseline's makespan by default, the drift scenario's post-shift
// window (with the advisor's restripe as a candidate) under -drift.
func cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	factor := fs.Float64("factor", 2, "counterfactual speedup factor (> 1)")
	drift := fs.Bool("drift", false, "profile the drift scenario's post-shift window instead of IOR")
	seed := fs.Int64("seed", 1, "simulation seed")
	quick := fs.Bool("quick", false, "run at reduced scale")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	opts := traceOptions(*seed, *quick, *parallel)
	if *drift {
		dw, err := experiments.RunDriftWhatIf(opts, *factor)
		if err != nil {
			return err
		}
		if err := dw.Report.WriteText(os.Stdout); err != nil {
			return err
		}
		return dw.Run.Report.WriteText(os.Stdout)
	}
	run, err := experiments.TraceIOR(opts)
	if err != nil {
		return err
	}
	rep, err := run.WhatIf(*factor)
	if err != nil {
		return err
	}
	return rep.WriteText(os.Stdout)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	path := fs.String("rst", "", "RST file (required)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("-rst is required")
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	// The header line distinguishes two-tier from tiered tables.
	if rst, err := harl.ReadRST(bytes.NewReader(data)); err == nil {
		fmt.Printf("%-6s %-14s %-14s %-10s %-10s\n", "region", "offset", "end", "H stripe", "S stripe")
		for i, e := range rst.Entries {
			fmt.Printf("%-6d %-14d %-14d %-10s %-10s\n", i, e.Offset, e.End, kb(e.H), kb(e.S))
		}
		return nil
	}
	trst, err := harl.ReadTieredRST(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("not a valid RST or tiered RST: %w", err)
	}
	fmt.Printf("tier server counts: %v\n", trst.Counts)
	fmt.Printf("%-6s %-14s %-14s %s\n", "region", "offset", "end", "per-tier stripes")
	for i, e := range trst.Entries {
		fmt.Printf("%-6d %-14d %-14d %v\n", i, e.Offset, e.End, e.Stripes)
	}
	return nil
}

func kb(b int64) string {
	if b%1024 == 0 {
		return fmt.Sprintf("%dKB", b/1024)
	}
	return fmt.Sprintf("%dB", b)
}
