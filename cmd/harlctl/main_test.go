package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs one dispatch with os.Stdout redirected to a pipe and
// returns what the command printed alongside its error.
func capture(t *testing.T, cmd string, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := dispatch(cmd, args)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestSummaryOnTinyTrace(t *testing.T) {
	out, err := capture(t, "summary", "-trace", "testdata/tiny.trace")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"requests:   24", "4 reads, 20 writes", "open files: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestDivideOnTinyTrace(t *testing.T) {
	out, err := capture(t, "divide", "-trace", "testdata/tiny.trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "regions (threshold") {
		t.Errorf("divide output malformed:\n%s", out)
	}
}

func TestOptimizeShowRoundTrip(t *testing.T) {
	rst := filepath.Join(t.TempDir(), "tiny.rst")
	out, err := capture(t, "optimize", "-trace", "testdata/tiny.trace", "-out", rst, "-probes", "50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RST with") || !strings.Contains(out, "threshold used") {
		t.Errorf("optimize output malformed:\n%s", out)
	}
	out, err = capture(t, "show", "-rst", rst)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "H stripe") {
		t.Errorf("show output malformed:\n%s", out)
	}
}

func TestTraceCommandQuick(t *testing.T) {
	json := filepath.Join(t.TempDir(), "trace.json")
	out, err := capture(t, "trace", "-quick", "-out", json)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spans written") || !strings.Contains(out, "ior: write") {
		t.Errorf("trace output malformed:\n%s", out)
	}
	data, err := os.ReadFile(json)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"displayTimeUnit"`) {
		t.Error("trace export is not trace_event JSON")
	}
}

func TestMonitorCommandQuick(t *testing.T) {
	out, err := capture(t, "monitor", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"layout health", "advice: restripe", "detected"} {
		if !strings.Contains(out, want) {
			t.Errorf("monitor missing %q:\n%s", want, out)
		}
	}
}

func TestHealthExitCodes(t *testing.T) {
	out, err := capture(t, "health", "-quick")
	var code exitCode
	if !errors.As(err, &code) || code != 1 {
		t.Fatalf("shifted health err = %v, want exit code 1", err)
	}
	if !strings.Contains(out, "STALE") {
		t.Errorf("stale health output malformed:\n%s", out)
	}
	out, err = capture(t, "health", "-quick", "-shift=false")
	if err != nil {
		t.Fatalf("control health: %v", err)
	}
	if !strings.Contains(out, "healthy") {
		t.Errorf("control health output malformed:\n%s", out)
	}
}

func TestHealthReplStatus(t *testing.T) {
	out, err := capture(t, "health", "-quick", "-repl")
	if err != nil {
		t.Fatalf("health -repl: %v\n%s", err, out)
	}
	for _, want := range []string{"replica/view status", "unreplicated", "r=2", "view changes", "available: every replica group"} {
		if !strings.Contains(out, want) {
			t.Errorf("health -repl missing %q:\n%s", want, out)
		}
	}
}

func TestCritPathCommandQuick(t *testing.T) {
	json := filepath.Join(t.TempDir(), "highlight.json")
	out, err := capture(t, "critpath", "-quick", "-out", json)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path:", "by kind:", "by tier:", "highlighted trace written"} {
		if !strings.Contains(out, want) {
			t.Errorf("critpath missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(json)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"critical-path"`) {
		t.Error("highlight export missing the critical-path track")
	}
}

func TestWhatIfDriftCommandQuick(t *testing.T) {
	out, err := capture(t, "whatif", "-quick", "-drift")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"what-if baseline:", "#1 restripe/r", "causal gain", "(measured)"} {
		if !strings.Contains(out, want) {
			t.Errorf("whatif -drift missing %q:\n%s", want, out)
		}
	}
}

func TestSLOCommandFiresOnDoubleCrash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundles")
	out, err := capture(t, "slo", "-bundle-dir", dir)
	var code exitCode
	if !errors.As(err, &code) || code != 1 {
		t.Fatalf("slo under double-crash err = %v, want exit code 1\n%s", err, out)
	}
	for _, want := range []string{"ALERT", "burn", "bundle:", "SLO BURN:"} {
		if !strings.Contains(out, want) {
			t.Errorf("slo output missing %q:\n%s", want, out)
		}
	}
	// The incident bundles landed on disk under the seed directory.
	matches, err := filepath.Glob(filepath.Join(dir, "seed-1", "*", "trace.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no bundle traces under %s (err %v)", dir, err)
	}
}

func TestRecordCommandQuick(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundles")
	out, err := capture(t, "record", "-quick", "-bundle-dir", dir)
	if err != nil {
		t.Fatalf("record: %v\n%s", err, out)
	}
	for _, want := range []string{"incident: record", "recorder:", "bundle written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("record output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{"trace.json", "metrics.txt", "blame.txt", "alert.txt"} {
		matches, err := filepath.Glob(filepath.Join(dir, "seed-1", "record-*", f))
		if err != nil || len(matches) != 1 {
			t.Fatalf("bundle artifact %s not on disk under %s (err %v)", f, dir, err)
		}
	}
}

func TestMetricsPromDeterministic(t *testing.T) {
	first, err := capture(t, "metrics", "-quick", "-prom")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE pfs_disk_ops_total counter", "# virtual time", `server="`} {
		if !strings.Contains(first, want) {
			t.Errorf("prom export missing %q:\n%.400s", want, first)
		}
	}
	second, err := capture(t, "metrics", "-quick", "-prom")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("prometheus export is not byte-deterministic across replays")
	}
}

func TestUnknownCommandUsage(t *testing.T) {
	var code exitCode
	if _, err := capture(t, "bogus"); !errors.As(err, &code) || code != 2 {
		t.Fatalf("unknown command err = %v, want exit code 2", err)
	}
}

// doctor confirms the seeded straggler with exit code 1 and a report
// byte-identical to the committed golden; the fault-free control exits
// clean.
func TestDoctorCommandGoldenAndExitCodes(t *testing.T) {
	out, err := capture(t, "doctor", "-quick", "-seed", "1")
	var code exitCode
	if !errors.As(err, &code) || code != 1 {
		t.Fatalf("doctor straggler run err = %v, want exit code 1\n%s", err, out)
	}
	for _, want := range []string{"[straggle] h1 (hdd)", "skew heatmap", "CONFIRMED: 1 straggler(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("doctor output missing %q:\n%s", want, out)
		}
	}
	golden, gerr := os.ReadFile("testdata/doctor_quick_seed1.txt")
	if gerr != nil {
		t.Fatal(gerr)
	}
	if out != string(golden) {
		t.Errorf("doctor report drifted from testdata/doctor_quick_seed1.txt:\n got:\n%s\nwant:\n%s", out, golden)
	}

	out, err = capture(t, "doctor", "-quick", "-control")
	if err != nil {
		t.Fatalf("doctor control: %v\n%s", err, out)
	}
	for _, want := range []string{"no anomalies", "clean: no straggler confirmed"} {
		if !strings.Contains(out, want) {
			t.Errorf("doctor control output missing %q:\n%s", want, out)
		}
	}
}
