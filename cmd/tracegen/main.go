// Command tracegen synthesizes IOSIG-format trace files for the analysis
// tools: the uniform IOR workload, the paper's four-region non-uniform
// workload, or a mixed random workload.
//
// Usage:
//
//	tracegen -kind ior     -out ior.trace [-ranks 16] [-req 512K] [-file 2G]
//	tracegen -kind multi   -out multi.trace [-ranks 16]
//	tracegen -kind mixed   -out mixed.trace [-requests 2000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"harl/internal/device"
	"harl/internal/ior"
	"harl/internal/sim"
	"harl/internal/trace"
)

func main() {
	kind := flag.String("kind", "ior", "workload kind: ior, multi or mixed")
	out := flag.String("out", "", "output trace file (required)")
	ranks := flag.Int("ranks", 16, "processes")
	req := flag.String("req", "512K", "request size (ior kind)")
	file := flag.String("file", "2G", "file size (ior kind)")
	requests := flag.Int("requests", 2000, "request count (mixed kind)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required")
		os.Exit(2)
	}

	var tr *trace.Trace
	switch *kind {
	case "ior":
		cfg := ior.Default()
		cfg.Ranks = *ranks
		cfg.RequestSize = parseSize(*req)
		cfg.FileSize = parseSize(*file)
		cfg.Seed = *seed
		if err := cfg.Validate(); err != nil {
			fail(err)
		}
		tr = cfg.Trace()
	case "multi":
		cfg := ior.DefaultMulti()
		cfg.Ranks = *ranks
		cfg.Seed = *seed
		if err := cfg.Validate(); err != nil {
			fail(err)
		}
		tr = cfg.Trace()
	case "mixed":
		tr = mixed(*requests, *seed)
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d records to %s\n", tr.Len(), *out)
}

// mixed emits phases of differing request sizes at increasing offsets —
// the kind of multi-phase application trace HARL's region division is
// built for.
func mixed(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	off := int64(0)
	ts := sim.Time(0)
	remaining := n
	for remaining > 0 {
		phase := rng.Intn(n/4+1) + 4
		if phase > remaining {
			phase = remaining
		}
		size := int64(4096) << uint(rng.Intn(10)) // 4K..2M
		op := device.Read
		if rng.Intn(2) == 1 {
			op = device.Write
		}
		for i := 0; i < phase; i++ {
			tr.Records = append(tr.Records, trace.Record{
				PID: 1000, Rank: rng.Intn(16), FD: 3,
				Op: op, Offset: off, Size: size,
				Start: ts, End: ts + 1,
			})
			off += size
			ts++
		}
		remaining -= phase
	}
	return tr
}

func parseSize(s string) int64 {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		fail(fmt.Errorf("bad size %q", s))
	}
	return n * mult
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
