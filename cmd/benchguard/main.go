// Command benchguard tracks the repo's benchmark numbers in committed
// JSON snapshots (BENCH_PR<N>.json) and guards against silent
// regressions.
//
// Usage:
//
//	benchguard -write -file BENCH_PR6.json [-seed N]
//	benchguard -check [-file BENCH_PR6.json] [-seed N] [-tol 1.0]
//
// -write measures the quick-scale benchmarks — virtual IOR, BTIO and
// drift end-to-end times, the Analysis Phase wall-clock, and the
// ScaleHuge stress run (virtual end, wall-clock ceiling, and the
// events/second DES throughput, which only flags drops) — and
// rewrites the file (-file is required, so a new PR's snapshot is named
// deliberately). -check re-measures and compares against the committed
// numbers; with no -file it auto-discovers the newest BENCH_PR<N>.json
// in the working directory, so the Makefile never hardcodes a PR number.
// The virtual times are deterministic, so any drift beyond their small
// tolerance means simulated behavior changed; the wall-clock is
// machine-dependent and only flags large slowdowns. -tol scales every
// tolerance. Exit code 1 on any violation (make verify treats it as a
// non-fatal warning).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"harl/internal/experiments"
)

// metric is one tracked number with its relative tolerance.
type metric struct {
	Value float64 `json:"value"`
	// Tolerance is the allowed relative deviation. Virtual-time metrics
	// flag deviation in either direction (determinism guard); wall-clock
	// metrics only flag slowdowns.
	Tolerance float64 `json:"tolerance"`
	// WallClock marks machine-dependent metrics.
	WallClock bool `json:"wall_clock,omitempty"`
	// HigherBetter inverts the "good direction" for wall-clock metrics
	// (throughputs: only drops are regressions).
	HigherBetter bool `json:"higher_better,omitempty"`
}

// file is the committed benchmark snapshot.
type file struct {
	Schema  string            `json:"schema"`
	Scale   string            `json:"scale"`
	Seed    int64             `json:"seed"`
	Metrics map[string]metric `json:"metrics"`
}

const schema = "harl-bench v1"

func measure(seed int64) (map[string]metric, error) {
	o := experiments.QuickOptions()
	o.Seed = seed
	st, err := experiments.BenchSnapshot(o)
	if err != nil {
		return nil, err
	}
	return map[string]metric{
		"ior_end_seconds":          {Value: st.IOREndSeconds, Tolerance: 0.01},
		"btio_end_seconds":         {Value: st.BTIOEndSeconds, Tolerance: 0.01},
		"drift_end_seconds":        {Value: st.DriftEndSeconds, Tolerance: 0.01},
		"analysis_wall_seconds":    {Value: st.AnalysisWallSeconds, Tolerance: 2.0, WallClock: true},
		"scale_huge_end_seconds":   {Value: st.ScaleHugeEndSeconds, Tolerance: 0.01},
		"scale_huge_wall_seconds":  {Value: st.ScaleHugeWallSeconds, Tolerance: 1.0, WallClock: true},
		"events_per_second":        {Value: st.EventsPerSecond, Tolerance: 0.5, WallClock: true, HigherBetter: true},
		"repl_r1_write_seconds":    {Value: st.ReplR1WriteSeconds, Tolerance: 0.01},
		"repl_r2_write_seconds":    {Value: st.ReplR2WriteSeconds, Tolerance: 0.01},
		"repl_recovery_seconds":    {Value: st.ReplRecoverySeconds, Tolerance: 0.01},
		"slo_alert_seconds":        {Value: st.SLOAlertSeconds, Tolerance: 0.01},
		"recorder_overhead_ratio":  {Value: st.RecorderOverheadRatio, Tolerance: 1.0, WallClock: true},
		"recorder_allocs_per_span": {Value: st.RecorderAllocsPerSpan, Tolerance: 1.0, WallClock: true},
		"doctor_detect_seconds":    {Value: st.DoctorDetectSeconds, Tolerance: 0.01},
		"sketch_overhead_ratio":    {Value: st.SketchOverheadRatio, Tolerance: 1.0, WallClock: true},
	}, nil
}

// newestSnapshot finds the BENCH_PR<N>.json with the highest N in dir,
// so -check follows the stacked-PR sequence without Makefile edits.
func newestSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		name := filepath.Base(m)
		num := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_PR"), ".json")
		n, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR<N>.json snapshot in %s", dir)
	}
	return best, nil
}

func main() {
	path := flag.String("file", "", "benchmark snapshot file (default for -check: newest BENCH_PR<N>.json here)")
	write := flag.Bool("write", false, "measure and rewrite the snapshot")
	check := flag.Bool("check", false, "measure and compare against the snapshot")
	seed := flag.Int64("seed", 1, "simulation seed")
	tol := flag.Float64("tol", 1.0, "tolerance scale factor for -check")
	flag.Parse()
	if *write == *check {
		fmt.Fprintln(os.Stderr, "benchguard: exactly one of -write or -check is required")
		os.Exit(2)
	}
	if *path == "" {
		if *write {
			fmt.Fprintln(os.Stderr, "benchguard: -write requires an explicit -file (name the PR's snapshot deliberately)")
			os.Exit(2)
		}
		p, err := newestSnapshot(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		*path = p
		fmt.Printf("benchguard: checking against %s\n", p)
	}
	if err := run(*path, *write, *seed, *tol); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, write bool, seed int64, tol float64) error {
	got, err := measure(seed)
	if err != nil {
		return err
	}
	if write {
		out := file{Schema: schema, Scale: "quick", Seed: seed, Metrics: got}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchguard: wrote %d metrics to %s\n", len(got), path)
		fmt.Printf("benchguard: DES throughput %.0f events/sec (ScaleHuge, %.2fs wall)\n",
			got["events_per_second"].Value, got["scale_huge_wall_seconds"].Value)
		return nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want file
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if want.Schema != schema {
		return fmt.Errorf("%s: schema %q, want %q", path, want.Schema, schema)
	}
	if want.Seed != seed {
		return fmt.Errorf("%s was written with seed %d, checking with %d", path, want.Seed, seed)
	}
	violations := 0
	for name, w := range want.Metrics {
		g, ok := got[name]
		if !ok {
			fmt.Printf("benchguard: %s: no longer measured\n", name)
			violations++
			continue
		}
		dev := math.Abs(g.Value-w.Value) / w.Value
		limit := w.Tolerance * tol
		ok = dev <= limit
		better := g.Value <= w.Value
		if w.HigherBetter {
			better = g.Value >= w.Value
		}
		if w.WallClock && better {
			// Wall-clock metrics only flag moves in the bad direction
			// (slowdowns, or throughput drops for higher-better).
			ok = true
		}
		status := "ok"
		if !ok {
			status = "REGRESSION"
			violations++
		}
		fmt.Printf("benchguard: %-22s %12.6f -> %12.6f (%+.2f%%, limit %.0f%%) %s\n",
			name, w.Value, g.Value, 100*(g.Value-w.Value)/w.Value, 100*limit, status)
	}
	for name := range got {
		if _, ok := want.Metrics[name]; !ok {
			fmt.Printf("benchguard: %s: new metric, not in %s (re-run -write)\n", name, path)
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d metric(s) outside tolerance", violations)
	}
	fmt.Printf("benchguard: %d metrics within tolerance\n", len(want.Metrics))
	return nil
}
