package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR5.json", "BENCH_PR6.json", "BENCH_PR12.json", "BENCH_PRx.json", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_PR12.json"); got != want {
		t.Errorf("newestSnapshot = %q, want %q", got, want)
	}
	if _, err := newestSnapshot(t.TempDir()); err == nil {
		t.Error("expected error for directory with no snapshots")
	}
}
