// Command iorsim runs the IOR benchmark on the simulated hybrid parallel
// file system with a chosen data layout.
//
// Usage:
//
//	iorsim [-ranks 16] [-req 512K] [-file 2G] [-hservers 6] [-sservers 2]
//	       [-layout fixed:64K | -layout varied:32K:160K | -layout harl | -layout random]
//	       [-seed 1]
//
// The harl layout runs the full pipeline: synthesize the tracing-phase
// trace from the workload plan, calibrate the cost model against the
// simulated devices, analyze (Algorithms 1 and 2), place, then measure.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"harl/internal/cluster"
	"harl/internal/harl"
	"harl/internal/ior"
	"harl/internal/layout"
	"harl/internal/mpiio"
)

func main() {
	ranks := flag.Int("ranks", 16, "number of IOR processes")
	nodes := flag.Int("nodes", 8, "compute nodes hosting the processes")
	req := flag.String("req", "512K", "request size (K/M suffixes)")
	file := flag.String("file", "2G", "shared file size")
	hservers := flag.Int("hservers", 6, "HDD servers")
	sservers := flag.Int("sservers", 2, "SSD servers")
	layoutSpec := flag.String("layout", "fixed:64K", "fixed:SIZE | varied:H:S | random | harl")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := ior.Config{
		Ranks:        *ranks,
		RanksPerNode: max(1, *ranks / *nodes),
		RequestSize:  parseSize(*req),
		FileSize:     parseSize(*file),
		Random:       true,
		Seed:         *seed,
	}
	clusterCfg := cluster.WithRatio(*hservers, *sservers)
	clusterCfg.Seed = *seed

	res, label, err := run(clusterCfg, cfg, *layoutSpec, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("layout %-22s ranks %-4d req %-8s file %s\n", label, cfg.Ranks, *req, *file)
	fmt.Printf("  write: %8.1f MB/s  (%d bytes in %v)\n", res.WriteMBs(), res.WriteBytes, res.WriteTime)
	fmt.Printf("  read:  %8.1f MB/s  (%d bytes in %v)\n", res.ReadMBs(), res.ReadBytes, res.ReadTime)
}

func run(clusterCfg cluster.Config, cfg ior.Config, spec string, seed int64) (ior.Result, string, error) {
	var pair harl.StripePair
	switch {
	case strings.HasPrefix(spec, "fixed:"):
		sz := parseSize(strings.TrimPrefix(spec, "fixed:"))
		pair = harl.StripePair{H: sz, S: sz}
	case strings.HasPrefix(spec, "varied:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return ior.Result{}, "", fmt.Errorf("bad varied layout %q, want varied:H:S", spec)
		}
		pair = harl.StripePair{H: parseSize(parts[1]), S: parseSize(parts[2])}
	case spec == "random":
		rng := rand.New(rand.NewSource(seed + 42))
		pair = harl.StripePair{H: (rng.Int63n(512) + 1) * 4096, S: (rng.Int63n(512) + 1) * 4096}
	case spec == "harl":
		return runHARL(clusterCfg, cfg)
	default:
		return ior.Result{}, "", fmt.Errorf("unknown layout %q", spec)
	}
	res, err := runFixed(clusterCfg, cfg, pair)
	return res, pair.String(), err
}

func runFixed(clusterCfg cluster.Config, cfg ior.Config, pair harl.StripePair) (ior.Result, error) {
	tb, err := cluster.New(clusterCfg)
	if err != nil {
		return ior.Result{}, err
	}
	w := mpiio.NewWorld(tb.FS, cfg.Ranks, cfg.RanksPerNode)
	st := layout.Striping{M: clusterCfg.HServers, N: clusterCfg.SServers, H: pair.H, S: pair.S}
	var f *mpiio.PlainFile
	var createErr error
	w.Run(func() {
		w.CreatePlain("ior", st, func(file *mpiio.PlainFile, err error) { f, createErr = file, err })
	})
	if createErr != nil {
		return ior.Result{}, createErr
	}
	return ior.Run(w, f, cfg)
}

func runHARL(clusterCfg cluster.Config, cfg ior.Config) (ior.Result, string, error) {
	tb, err := cluster.New(clusterCfg)
	if err != nil {
		return ior.Result{}, "", err
	}
	params, err := tb.Calibrate(1000)
	if err != nil {
		return ior.Result{}, "", err
	}
	plan, err := harl.Planner{Params: params, ChunkSize: maxI64(cfg.FileSize/256, 1<<20)}.Analyze(cfg.Trace())
	if err != nil {
		return ior.Result{}, "", err
	}
	tb2, err := cluster.New(clusterCfg)
	if err != nil {
		return ior.Result{}, "", err
	}
	w := mpiio.NewWorld(tb2.FS, cfg.Ranks, cfg.RanksPerNode)
	var f *mpiio.HARLFile
	var createErr error
	w.Run(func() {
		w.CreateHARL("ior", &plan.RST, func(file *mpiio.HARLFile, err error) { f, createErr = file, err })
	})
	if createErr != nil {
		return ior.Result{}, "", createErr
	}
	res, err := ior.Run(w, f, cfg)
	label := "harl"
	if len(plan.Regions) == 1 {
		label = "harl " + plan.Regions[0].Stripes.String()
	} else {
		label = fmt.Sprintf("harl (%d regions)", len(plan.Regions))
	}
	return res, label, err
}

// parseSize parses "64K", "2M", "1G" or plain bytes.
func parseSize(s string) int64 {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: bad size %q\n", s)
		os.Exit(2)
	}
	return n * mult
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
